//! `ringscope`: live telemetry for running samplers (DESIGN.md §10).
//!
//! Post-mortem observability ([`crate::metrics::EpochReport`]) only
//! surfaces after an epoch joins; this module makes a *running* epoch
//! visible without touching the paper's §3.1 sync-free hot path:
//!
//! * **Publish side** — each worker owns a
//!   [`SnapshotCell<WorkerSnapshot>`] seqlock slot and overwrites it
//!   after every mini-batch (two word stores + a fence; no locks, no
//!   RMW, no syscalls). See [`ringstat::snapshot`] for the
//!   memory-ordering argument.
//! * **Observe side** — one telemetry thread polls the
//!   [`SnapshotRegistry`], serves `GET /metrics` (Prometheus text),
//!   `GET /progress` (aggregated JSON with throughput and ETA),
//!   `GET /trace` (the live tail of each worker's flight-recorder
//!   ring, read with the non-destructive [`EventRing::recent`]), and
//!   `GET /healthz`, and runs the stall watchdog: a worker whose
//!   snapshot version stops advancing for longer than the configured
//!   window is reported with its last-known state (group index,
//!   in-flight depth) and flips `/healthz` to `503` — turning silent
//!   io_uring wedges into diagnosable events.
//!
//! Everything here is cold-path: the registry's `Mutex` is touched only
//! at epoch setup and by the telemetry thread, never per batch.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ringsampler_io::IoEngineError;
use ringstat::{
    EventRing, HttpServer, Json, PromWriter, Response, SnapshotCell, TraceEvent, WorkerSnapshot,
};

use crate::error::{Result, SamplerError};

/// Configuration for the embedded telemetry server and stall watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Bind address for the HTTP endpoints, e.g. `127.0.0.1:9898`
    /// (port `0` picks a free port, printed to stderr at startup).
    pub addr: String,
    /// How often the telemetry thread polls worker slots, serves pending
    /// connections, and ticks the watchdog.
    pub poll_interval: Duration,
    /// How long a worker's snapshot version may stay unchanged (while
    /// the worker is active) before it is declared stalled.
    pub stall_threshold: Duration,
}

impl TelemetryConfig {
    /// Telemetry on `addr` with the default cadence: 200 ms polls, 10 s
    /// stall window.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            poll_interval: Duration::from_millis(200),
            stall_threshold: Duration::from_secs(10),
        }
    }

    /// Sets the poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Sets the stall-watchdog window.
    pub fn stall_threshold(mut self, window: Duration) -> Self {
        self.stall_threshold = window;
        self
    }

    /// Validates invariants.
    ///
    /// # Errors
    /// [`SamplerError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.addr.is_empty() {
            return Err(SamplerError::InvalidConfig(
                "telemetry bind address must be non-empty".into(),
            ));
        }
        if self.poll_interval.is_zero() {
            return Err(SamplerError::InvalidConfig(
                "telemetry poll interval must be positive".into(),
            ));
        }
        if self.stall_threshold.is_zero() {
            return Err(SamplerError::InvalidConfig(
                "telemetry stall threshold must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// One reader-side observation of a worker slot.
#[derive(Debug, Clone, Copy)]
pub struct WorkerObservation {
    /// Slot index (stable within an epoch; label value in `/metrics`).
    pub index: usize,
    /// The slot's seqlock version — the watchdog's heartbeat.
    pub version: u64,
    /// The snapshot, or `None` if the cell stayed torn through the
    /// bounded retries (writer died mid-publish).
    pub snapshot: Option<WorkerSnapshot>,
}

/// The shared collection of worker seqlock slots the telemetry thread
/// reads. Registration is cold-path (epoch setup / loader construction);
/// workers never touch the registry after receiving their slot.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    slots: Mutex<Vec<Arc<SnapshotCell<WorkerSnapshot>>>>,
    epochs: Mutex<u64>,
    /// Flight-recorder rings keyed by worker index, for the live
    /// `GET /trace` tail. Registered at epoch setup (cold path); the
    /// telemetry thread reads them with the best-effort, torn-slot-
    /// skipping [`EventRing::recent`] — never the destructive drain.
    rings: Mutex<Vec<(usize, Arc<EventRing>)>>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one fresh slot (standalone workers, e.g. a training
    /// `DataLoader`). The slot stays listed after the worker finishes,
    /// with `active = false`.
    pub fn register(&self) -> Arc<SnapshotCell<WorkerSnapshot>> {
        let cell = Arc::new(SnapshotCell::new(WorkerSnapshot::new()));
        if let Ok(mut slots) = self.slots.lock() {
            slots.push(Arc::clone(&cell));
        }
        cell
    }

    /// Replaces all slots with `n` fresh ones for a new epoch and
    /// returns them (one per worker thread, in index order). Flight-
    /// recorder rings from the previous epoch are dropped too — the new
    /// epoch's workers re-register theirs.
    pub fn reset_epoch(&self, n: usize) -> Vec<Arc<SnapshotCell<WorkerSnapshot>>> {
        let cells: Vec<_> = (0..n)
            .map(|_| Arc::new(SnapshotCell::new(WorkerSnapshot::new())))
            .collect();
        if let Ok(mut slots) = self.slots.lock() {
            *slots = cells.clone();
        }
        if let Ok(mut rings) = self.rings.lock() {
            rings.clear();
        }
        cells
    }

    /// Registers worker `worker`'s flight-recorder ring for the live
    /// `/trace` tail. Cold path (epoch setup / loader construction).
    pub fn register_ring(&self, worker: usize, ring: Arc<EventRing>) {
        if let Ok(mut rings) = self.rings.lock() {
            rings.push((worker, ring));
            rings.sort_by_key(|(w, _)| *w);
        }
    }

    /// Registers a standalone worker's ring (DataLoader path), assigning
    /// the next free index. Returns the assigned index.
    pub fn append_ring(&self, ring: Arc<EventRing>) -> usize {
        if let Ok(mut rings) = self.rings.lock() {
            let idx = rings.iter().map(|(w, _)| w + 1).max().unwrap_or(0);
            rings.push((idx, ring));
            idx
        } else {
            0
        }
    }

    /// Reads the tail of every registered flight-recorder ring: up to `k`
    /// most-recent events per worker (best effort — slots being written
    /// concurrently are skipped) plus the recorded/dropped cursors.
    pub fn observe_traces(&self, k: usize) -> Vec<TraceTail> {
        let rings = match self.rings.lock() {
            Ok(r) => r.clone(),
            Err(_) => return Vec::new(),
        };
        rings
            .iter()
            .map(|(worker, ring)| TraceTail {
                index: *worker,
                recorded: ring.head(),
                dropped: ring.dropped(),
                events: ring.recent(k),
            })
            .collect()
    }

    /// Increments and returns the epoch counter (1-based).
    pub fn next_epoch(&self) -> u64 {
        match self.epochs.lock() {
            Ok(mut e) => {
                *e += 1;
                *e
            }
            Err(_) => 0,
        }
    }

    /// Reads every slot once (bounded seqlock retries per slot).
    pub fn observe(&self) -> Vec<WorkerObservation> {
        let slots = match self.slots.lock() {
            Ok(s) => s.clone(),
            Err(_) => return Vec::new(),
        };
        slots
            .iter()
            .enumerate()
            .map(|(index, cell)| WorkerObservation {
                index,
                version: cell.version(),
                snapshot: cell.read(),
            })
            .collect()
    }
}

/// One reader-side observation of a worker's flight-recorder ring: the
/// cursor counters plus a best-effort tail of recent events.
#[derive(Debug, Clone)]
pub struct TraceTail {
    /// Worker index the ring belongs to.
    pub index: usize,
    /// Events recorded onto the ring since creation (the head cursor).
    pub recorded: u64,
    /// Events dropped on overflow.
    pub dropped: u64,
    /// Up to the requested number of most-recent events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A worker the watchdog just declared stalled.
#[derive(Debug, Clone, Copy)]
pub struct StallEvent {
    /// Slot index of the stalled worker.
    pub worker: usize,
    /// The worker's last successfully read snapshot, if any.
    pub snapshot: Option<WorkerSnapshot>,
}

#[derive(Debug, Clone, Copy)]
struct SlotState {
    last_version: u64,
    last_change: Instant,
    stalled: bool,
}

/// The stall watchdog: tracks each slot's seqlock version across polls
/// and declares a worker stalled when an *active* worker's version has
/// not advanced within the threshold window.
///
/// Deterministic by construction — `now` is passed in, so tests drive
/// the clock without sleeping.
#[derive(Debug)]
pub struct StallDetector {
    threshold: Duration,
    states: Vec<SlotState>,
}

impl StallDetector {
    /// A detector with the given stall window.
    pub fn new(threshold: Duration) -> Self {
        Self {
            threshold,
            states: Vec::new(),
        }
    }

    /// Feeds one poll's observations; returns workers that *newly*
    /// transitioned to stalled this tick (for one-shot warnings).
    /// A version advance — or the worker going inactive — clears the
    /// stall. Slots that disappeared (epoch reset) are forgotten.
    pub fn observe(&mut self, obs: &[WorkerObservation], now: Instant) -> Vec<StallEvent> {
        self.states.truncate(obs.len());
        let mut newly_stalled = Vec::new();
        for o in obs {
            if o.index >= self.states.len() {
                self.states.push(SlotState {
                    last_version: o.version,
                    last_change: now,
                    stalled: false,
                });
                continue;
            }
            let Some(state) = self.states.get_mut(o.index) else {
                continue;
            };
            let active = o.snapshot.map(|s| s.active).unwrap_or(true);
            if o.version != state.last_version || !active {
                state.last_version = o.version;
                state.last_change = now;
                state.stalled = false;
            } else if !state.stalled
                && now.saturating_duration_since(state.last_change) >= self.threshold
            {
                state.stalled = true;
                newly_stalled.push(StallEvent {
                    worker: o.index,
                    snapshot: o.snapshot,
                });
            }
        }
        newly_stalled
    }

    /// True when no tracked worker is currently stalled.
    pub fn healthy(&self) -> bool {
        self.states.iter().all(|s| !s.stalled)
    }

    /// Indices of currently stalled workers.
    pub fn stalled_workers(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.stalled.then_some(i))
            .collect()
    }
}

/// Fleet-wide rates the server derives from successive polls; split out
/// so document rendering stays pure (golden-testable without clocks).
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetRates {
    /// Sampled edges per second since the first observation.
    pub edges_per_sec: f64,
    /// Completed batches per second since the first observation.
    pub batches_per_sec: f64,
    /// Estimated seconds until all assigned batches complete (`None`
    /// when unknown: no assigned totals or no progress yet).
    pub eta_seconds: Option<f64>,
}

/// Renders the `GET /metrics` Prometheus document for one poll's
/// observations plus the flight-recorder cursor counters. Pure: same
/// inputs ⇒ same text. `traces` may come from `observe_traces(0)` —
/// only the recorded/dropped counters are used here, never the events.
pub fn metrics_document(obs: &[WorkerObservation], traces: &[TraceTail]) -> String {
    let mut w = PromWriter::new();
    w.gauge("ringsampler_up", "Telemetry endpoint liveness", &[], 1.0);
    w.gauge(
        "ringsampler_workers",
        "Worker slots currently registered",
        &[],
        obs.len() as f64,
    );
    for o in obs {
        let Some(s) = o.snapshot else { continue };
        let idx = o.index.to_string();
        let labels: &[(&str, &str)] = &[("worker", &idx)];
        w.gauge(
            "ringsampler_worker_epoch",
            "Epoch the worker is sampling",
            labels,
            s.epoch as f64,
        );
        w.gauge(
            "ringsampler_worker_active",
            "1 while the worker is sampling, 0 after it joined",
            labels,
            if s.active { 1.0 } else { 0.0 },
        );
        w.counter(
            "ringsampler_worker_batches_total",
            "Mini-batches completed this epoch",
            labels,
            s.batches,
        );
        w.counter(
            "ringsampler_worker_targets_total",
            "Seed nodes processed this epoch",
            labels,
            s.targets,
        );
        w.counter(
            "ringsampler_worker_sampled_nodes_total",
            "Frontier nodes whose neighbor lists were sampled",
            labels,
            s.sampled_nodes,
        );
        w.counter(
            "ringsampler_worker_sampled_edges_total",
            "Neighbor entries sampled",
            labels,
            s.sampled_edges,
        );
        w.counter(
            "ringsampler_worker_io_bytes_total",
            "Payload bytes read from disk",
            labels,
            s.bytes_read,
        );
        w.counter(
            "ringsampler_worker_reads_submitted_total",
            "Read requests submitted to the I/O engine",
            labels,
            s.reads_submitted,
        );
        w.counter(
            "ringsampler_worker_reads_completed_total",
            "Read requests whose completions were reaped",
            labels,
            s.reads_completed,
        );
        w.counter(
            "ringsampler_worker_io_groups_total",
            "I/O groups submitted",
            labels,
            s.io_groups,
        );
        w.gauge(
            "ringsampler_worker_inflight_reads",
            "Read requests currently in flight on the worker's ring",
            labels,
            s.inflight as f64,
        );
        // Requested vs granted ring setup (zero for the pread engine):
        // divergence between the two words is the live fallback signal.
        let requested = ringsampler_io::RingSetupInfo::flag_names(s.ring_requested_flags);
        let granted = ringsampler_io::RingSetupInfo::flag_names(s.ring_granted_flags);
        let flag_labels: &[(&str, &str)] = &[("worker", &idx), ("flags", &requested)];
        w.gauge(
            "ringsampler_worker_ring_requested_flags",
            "io_uring setup flags the worker's ring requested",
            flag_labels,
            f64::from(s.ring_requested_flags),
        );
        let flag_labels: &[(&str, &str)] = &[("worker", &idx), ("flags", &granted)];
        w.gauge(
            "ringsampler_worker_ring_granted_flags",
            "io_uring setup flags the kernel granted the worker's ring",
            flag_labels,
            f64::from(s.ring_granted_flags),
        );
        w.histogram(
            "ringsampler_worker_batch_latency_seconds",
            "Wall latency per sampled mini-batch this epoch",
            labels,
            &s.batch_latency,
        );
    }
    for t in traces {
        let idx = t.index.to_string();
        let labels: &[(&str, &str)] = &[("worker", &idx)];
        w.counter(
            "ringsampler_trace_recorded_total",
            "Flight-recorder events recorded by the worker",
            labels,
            t.recorded,
        );
        w.counter(
            "ringsampler_trace_dropped_total",
            "Flight-recorder events dropped on ring overflow",
            labels,
            t.dropped,
        );
    }
    w.finish()
}

/// Renders the `GET /trace` JSON document: the best-effort tail of every
/// registered flight-recorder ring, with wire-stable event-kind names.
/// Pure: same tails ⇒ same text.
pub fn trace_document(tails: &[TraceTail]) -> String {
    let workers: Vec<Json> = tails
        .iter()
        .map(|t| {
            let events: Vec<Json> = t.events.iter().map(trace_event_json).collect();
            Json::object()
                .with("worker", Json::U64(t.index as u64))
                .with("recorded", Json::U64(t.recorded))
                .with("dropped", Json::U64(t.dropped))
                .with("events", Json::Array(events))
        })
        .collect();
    Json::object()
        .with("workers", Json::Array(workers))
        .to_string_pretty()
}

fn trace_event_json(e: &TraceEvent) -> Json {
    Json::object()
        .with("ts_ns", Json::U64(e.ts_ns))
        .with("kind", Json::str(e.kind.name()))
        .with("a", Json::U64(e.a))
        .with("b", Json::U64(e.b))
        .with("c", Json::U64(e.c))
        .with("d", Json::U64(e.d))
}

/// Renders the `GET /progress` JSON document: per-worker rows plus a
/// fleet aggregate. Pure: rates and stall state are passed in.
pub fn progress_document(obs: &[WorkerObservation], stalled: &[usize], rates: &FleetRates) -> String {
    let mut workers = Vec::with_capacity(obs.len());
    let mut fleet_batches = 0u64;
    let mut fleet_total_batches = 0u64;
    let mut fleet_edges = 0u64;
    let mut fleet_bytes = 0u64;
    let mut fleet_inflight = 0u64;
    let mut fleet_active = 0u64;
    for o in obs {
        let Some(s) = o.snapshot else { continue };
        fleet_batches += s.batches;
        fleet_total_batches += s.total_batches;
        fleet_edges += s.sampled_edges;
        fleet_bytes += s.bytes_read;
        fleet_inflight += s.inflight;
        fleet_active += u64::from(s.active);
        let fraction = if s.total_batches > 0 {
            s.batches as f64 / s.total_batches as f64
        } else {
            0.0
        };
        workers.push(
            Json::object()
                .with("worker", Json::U64(o.index as u64))
                .with("epoch", Json::U64(s.epoch))
                .with("active", Json::Bool(s.active))
                .with("stalled", Json::Bool(stalled.contains(&o.index)))
                .with("batches", Json::U64(s.batches))
                .with("total_batches", Json::U64(s.total_batches))
                .with("fraction", Json::F64(fraction))
                .with("targets", Json::U64(s.targets))
                .with("sampled_nodes", Json::U64(s.sampled_nodes))
                .with("sampled_edges", Json::U64(s.sampled_edges))
                .with("bytes_read", Json::U64(s.bytes_read))
                .with("reads_submitted", Json::U64(s.reads_submitted))
                .with("reads_completed", Json::U64(s.reads_completed))
                .with("inflight", Json::U64(s.inflight))
                .with("io_groups", Json::U64(s.io_groups))
                .with("batch_latency_p50_ns", Json::U64(s.batch_latency.p50()))
                .with("batch_latency_p99_ns", Json::U64(s.batch_latency.p99())),
        );
    }
    let fleet_fraction = if fleet_total_batches > 0 {
        fleet_batches as f64 / fleet_total_batches as f64
    } else {
        0.0
    };
    let fleet = Json::object()
        .with("workers", Json::U64(obs.len() as u64))
        .with("active", Json::U64(fleet_active))
        .with("stalled", Json::U64(stalled.len() as u64))
        .with("batches", Json::U64(fleet_batches))
        .with("total_batches", Json::U64(fleet_total_batches))
        .with("fraction", Json::F64(fleet_fraction))
        .with("sampled_edges", Json::U64(fleet_edges))
        .with("bytes_read", Json::U64(fleet_bytes))
        .with("inflight", Json::U64(fleet_inflight))
        .with("edges_per_sec", Json::F64(rates.edges_per_sec))
        .with("batches_per_sec", Json::F64(rates.batches_per_sec))
        .with(
            "eta_seconds",
            rates.eta_seconds.map(Json::F64).unwrap_or(Json::Null),
        );
    Json::object()
        .with("workers", Json::Array(workers))
        .with("fleet", fleet)
        .to_string_pretty()
}

/// A handle to the running telemetry server.
#[derive(Debug, Clone)]
pub struct TelemetryHandle {
    registry: Arc<SnapshotRegistry>,
    addr: SocketAddr,
    healthy: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
}

impl TelemetryHandle {
    /// The slot registry workers publish into.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// The bound address (real port even when configured with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current watchdog verdict: false once any active worker stalls.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Asks the telemetry thread to exit after its current tick.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// Binds the telemetry server on `cfg.addr`, announces the address on
/// stderr (`ringscope listening on http://…`), and spawns the combined
/// poll/serve/watchdog thread.
///
/// # Errors
/// [`SamplerError::Io`] when the bind fails.
pub fn spawn_server(cfg: &TelemetryConfig, registry: Arc<SnapshotRegistry>) -> Result<TelemetryHandle> {
    cfg.validate()?;
    let server = HttpServer::bind(&cfg.addr).map_err(|e| SamplerError::Io(IoEngineError::File(e)))?;
    let addr = server
        .local_addr()
        .map_err(|e| SamplerError::Io(IoEngineError::File(e)))?;
    eprintln!("ringscope listening on http://{addr}");
    let handle = TelemetryHandle {
        registry: Arc::clone(&registry),
        addr,
        healthy: Arc::new(AtomicBool::new(true)),
        shutdown: Arc::new(AtomicBool::new(false)),
    };
    let healthy = Arc::clone(&handle.healthy);
    let shutdown = Arc::clone(&handle.shutdown);
    let poll_interval = cfg.poll_interval;
    let mut detector = StallDetector::new(cfg.stall_threshold);
    let builder = std::thread::Builder::new().name("ringscope".into());
    let spawned = builder.spawn(move || {
        // (first instant, edges, batches) — baseline for fleet rates.
        let mut baseline: Option<(Instant, u64, u64)> = None;
        while !shutdown.load(Ordering::Acquire) {
            let now = Instant::now();
            let obs = registry.observe();
            for event in detector.observe(&obs, now) {
                warn_stalled(&event);
            }
            healthy.store(detector.healthy(), Ordering::Release);
            let stalled = detector.stalled_workers();
            let rates = compute_rates(&obs, &mut baseline, now);
            server.poll(8, |req| match req.path.as_str() {
                "/metrics" => Response::prometheus(metrics_document(
                    &obs,
                    &registry.observe_traces(0),
                )),
                "/progress" => Response::json(progress_document(&obs, &stalled, &rates)),
                "/trace" => Response::json(trace_document(&registry.observe_traces(256))),
                "/healthz" => {
                    if stalled.is_empty() {
                        Response::text("ok\n")
                    } else {
                        Response::service_unavailable(format!(
                            "stalled workers: {stalled:?}\n"
                        ))
                    }
                }
                _ => Response::not_found(),
            });
            std::thread::sleep(poll_interval);
        }
    });
    spawned.map_err(|e| SamplerError::Io(IoEngineError::File(e)))?;
    Ok(handle)
}

/// Derives fleet rates from the first observation that showed progress.
fn compute_rates(
    obs: &[WorkerObservation],
    baseline: &mut Option<(Instant, u64, u64)>,
    now: Instant,
) -> FleetRates {
    let mut edges = 0u64;
    let mut batches = 0u64;
    let mut total_batches = 0u64;
    for o in obs {
        if let Some(s) = o.snapshot {
            edges += s.sampled_edges;
            batches += s.batches;
            total_batches += s.total_batches;
        }
    }
    let (t0, e0, b0) = *baseline.get_or_insert((now, edges, batches));
    let dt = now.saturating_duration_since(t0).as_secs_f64();
    if dt <= 0.0 {
        return FleetRates::default();
    }
    let edges_per_sec = edges.saturating_sub(e0) as f64 / dt;
    let batches_per_sec = batches.saturating_sub(b0) as f64 / dt;
    let eta_seconds = if total_batches > batches && batches_per_sec > 0.0 {
        Some((total_batches - batches) as f64 / batches_per_sec)
    } else {
        None
    };
    FleetRates {
        edges_per_sec,
        batches_per_sec,
        eta_seconds,
    }
}

/// Emits the structured one-shot stall warning with the worker's
/// last-known state (group index, in-flight depth) to stderr.
fn warn_stalled(event: &StallEvent) {
    let mut doc = Json::object()
        .with("event", Json::str("ringscope_stall"))
        .with("worker", Json::U64(event.worker as u64));
    if let Some(s) = event.snapshot {
        doc = doc
            .with("epoch", Json::U64(s.epoch))
            .with("batches", Json::U64(s.batches))
            .with("io_groups", Json::U64(s.io_groups))
            .with("inflight", Json::U64(s.inflight))
            .with("reads_submitted", Json::U64(s.reads_submitted))
            .with("reads_completed", Json::U64(s.reads_completed));
    }
    eprintln!("{}", doc.to_string_compact());
}

/// The process-global telemetry server: bench binaries construct many
/// sequential `RingSampler` instances, which must share one listener
/// instead of binding a fresh port per sampler. First successful call
/// binds; subsequent calls (any config) return the same handle.
static GLOBAL_SERVER: OnceLock<std::result::Result<TelemetryHandle, String>> = OnceLock::new();

/// Returns the shared process-wide telemetry server, binding it on first
/// use with `cfg`.
///
/// # Errors
/// The first bind failure is sticky: every later call reports it too.
pub fn ensure_server(cfg: &TelemetryConfig) -> Result<TelemetryHandle> {
    let entry = GLOBAL_SERVER.get_or_init(|| {
        let registry = Arc::new(SnapshotRegistry::new());
        spawn_server(cfg, registry).map_err(|e| e.to_string())
    });
    match entry {
        Ok(handle) => Ok(handle.clone()),
        Err(msg) => Err(SamplerError::InvalidConfig(format!(
            "telemetry server failed to start: {msg}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    fn snap(batches: u64, total: u64, active: bool) -> WorkerSnapshot {
        let mut s = WorkerSnapshot::new();
        s.epoch = 1;
        s.batches = batches;
        s.total_batches = total;
        s.sampled_edges = batches * 100;
        s.bytes_read = batches * 4096;
        s.reads_submitted = batches * 64;
        s.reads_completed = batches * 64 - 2;
        s.inflight = 2;
        s.io_groups = batches * 2;
        s.active = active;
        s
    }

    fn obs_of(snaps: &[WorkerSnapshot]) -> Vec<WorkerObservation> {
        snaps
            .iter()
            .enumerate()
            .map(|(index, &s)| WorkerObservation {
                index,
                version: 2 * (s.batches + 1),
                snapshot: Some(s),
            })
            .collect()
    }

    #[test]
    fn registry_reset_and_register() {
        let reg = SnapshotRegistry::new();
        assert!(reg.observe().is_empty());
        let cells = reg.reset_epoch(3);
        assert_eq!(cells.len(), 3);
        assert_eq!(reg.observe().len(), 3);
        let extra = reg.register();
        extra.publish(snap(5, 10, true));
        let obs = reg.observe();
        assert_eq!(obs.len(), 4);
        assert_eq!(obs[3].snapshot.unwrap().batches, 5);
        assert_eq!(reg.reset_epoch(1).len(), 1);
        assert_eq!(reg.observe().len(), 1);
        assert_eq!(reg.next_epoch(), 1);
        assert_eq!(reg.next_epoch(), 2);
    }

    #[test]
    fn watchdog_fires_after_threshold_and_recovers() {
        let mut det = StallDetector::new(Duration::from_millis(100));
        let t0 = Instant::now();
        let obs = obs_of(&[snap(1, 10, true), snap(1, 10, true)]);

        assert!(det.observe(&obs, t0).is_empty(), "first sight never stalls");
        assert!(det.healthy());

        // Same versions within the window: not stalled yet.
        assert!(det.observe(&obs, t0 + Duration::from_millis(50)).is_empty());
        assert!(det.healthy());

        // Window elapsed with no version advance: both fire exactly once.
        let events = det.observe(&obs, t0 + Duration::from_millis(150));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].worker, 0);
        assert_eq!(events[0].snapshot.unwrap().inflight, 2);
        assert!(!det.healthy());
        assert_eq!(det.stalled_workers(), vec![0, 1]);
        assert!(
            det.observe(&obs, t0 + Duration::from_millis(250)).is_empty(),
            "stall warnings are one-shot"
        );

        // Worker 0 advances its version: recovers; worker 1 stays stalled.
        let mut advanced = obs.clone();
        advanced[0].version += 2;
        assert!(det.observe(&advanced, t0 + Duration::from_millis(300)).is_empty());
        assert_eq!(det.stalled_workers(), vec![1]);

        // Worker 1 goes inactive (joined): stall clears, healthy again.
        let mut joined = advanced.clone();
        joined[1].snapshot = Some(snap(1, 10, false));
        det.observe(&joined, t0 + Duration::from_millis(350));
        assert!(det.healthy());
    }

    #[test]
    fn inactive_workers_never_stall() {
        let mut det = StallDetector::new(Duration::from_millis(10));
        let t0 = Instant::now();
        let obs = obs_of(&[snap(4, 4, false)]);
        det.observe(&obs, t0);
        assert!(det.observe(&obs, t0 + Duration::from_secs(60)).is_empty());
        assert!(det.healthy());
    }

    #[test]
    fn metrics_document_has_acceptance_families() {
        let doc = metrics_document(&obs_of(&[snap(3, 8, true), snap(2, 8, true)]), &[]);
        assert!(doc.contains("# TYPE ringsampler_worker_sampled_edges_total counter"));
        assert!(doc.contains(r#"ringsampler_worker_sampled_edges_total{worker="0"} 300"#));
        assert!(doc.contains(r#"ringsampler_worker_sampled_edges_total{worker="1"} 200"#));
        assert!(doc.contains("# TYPE ringsampler_worker_inflight_reads gauge"));
        assert!(doc.contains(r#"ringsampler_worker_inflight_reads{worker="0"} 2"#));
        assert!(doc.contains("ringsampler_workers 2"));
        // HELP/TYPE emitted once per family despite two workers.
        assert_eq!(doc.matches("# HELP ringsampler_worker_batches_total").count(), 1);
    }

    fn trace_ev(ts: u64, kind: ringstat::EventKind, a: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind,
            a,
            b: 0,
            c: 0,
            d: 0,
        }
    }

    #[test]
    fn metrics_document_carries_trace_counters() {
        let tails = [
            TraceTail {
                index: 0,
                recorded: 42,
                dropped: 0,
                events: Vec::new(),
            },
            TraceTail {
                index: 1,
                recorded: 9,
                dropped: 3,
                events: Vec::new(),
            },
        ];
        let doc = metrics_document(&obs_of(&[snap(1, 4, true)]), &tails);
        assert!(doc.contains(r#"ringsampler_trace_recorded_total{worker="0"} 42"#), "{doc}");
        assert!(doc.contains(r#"ringsampler_trace_dropped_total{worker="1"} 3"#), "{doc}");
    }

    #[test]
    fn registry_rings_register_reset_and_observe() {
        use ringstat::EventKind;
        let reg = SnapshotRegistry::new();
        assert!(reg.observe_traces(8).is_empty());
        let r1 = Arc::new(EventRing::new(8));
        let r0 = Arc::new(EventRing::new(8));
        // Registered out of order: observation is sorted by worker index.
        reg.register_ring(1, Arc::clone(&r1));
        reg.register_ring(0, Arc::clone(&r0));
        r0.record(trace_ev(5, EventKind::BatchStart, 0));
        r0.record(trace_ev(9, EventKind::BatchEnd, 0));
        let tails = reg.observe_traces(8);
        assert_eq!(tails.len(), 2);
        assert_eq!(tails[0].index, 0);
        assert_eq!(tails[0].recorded, 2);
        assert_eq!(tails[0].events.len(), 2);
        assert_eq!(tails[1].index, 1);
        assert!(tails[1].events.is_empty());
        // A standalone ring appends after the highest index.
        let idx = reg.append_ring(Arc::new(EventRing::new(4)));
        assert_eq!(idx, 2);
        // Epoch reset forgets all rings.
        reg.reset_epoch(2);
        assert!(reg.observe_traces(8).is_empty());
    }

    #[test]
    fn trace_document_renders_tails() {
        use ringstat::EventKind;
        let tails = [TraceTail {
            index: 0,
            recorded: 3,
            dropped: 1,
            events: vec![
                trace_ev(100, EventKind::GroupSubmit, 7),
                trace_ev(250, EventKind::GroupComplete, 7),
            ],
        }];
        let doc = trace_document(&tails);
        assert!(doc.contains("\"worker\": 0"), "{doc}");
        assert!(doc.contains("\"recorded\": 3"), "{doc}");
        assert!(doc.contains("\"dropped\": 1"), "{doc}");
        assert!(doc.contains("\"kind\": \"group_submit\""), "{doc}");
        assert!(doc.contains("\"kind\": \"group_complete\""), "{doc}");
        assert!(doc.contains("\"ts_ns\": 250"), "{doc}");
        // The document parses back as JSON.
        let parsed = Json::parse(&doc).expect("trace document parses");
        let workers = parsed.get("workers").and_then(Json::as_array).unwrap();
        assert_eq!(workers.len(), 1);
    }

    #[test]
    fn progress_document_aggregates_fleet() {
        let rates = FleetRates {
            edges_per_sec: 500.0,
            batches_per_sec: 5.0,
            eta_seconds: Some(2.2),
        };
        let doc = progress_document(&obs_of(&[snap(3, 8, true), snap(5, 8, true)]), &[1], &rates);
        assert!(doc.contains("\"batches\": 8"), "{doc}");
        assert!(doc.contains("\"total_batches\": 16"));
        assert!(doc.contains("\"fraction\": 0.5"));
        assert!(doc.contains("\"edges_per_sec\": 500.0"));
        assert!(doc.contains("\"eta_seconds\": 2.2"));
        assert!(doc.contains("\"stalled\": true"));
        assert!(doc.contains("\"stalled\": 1"));
    }

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        for _ in 0..50 {
            if let Ok(mut stream) = TcpStream::connect(addr) {
                stream
                    .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                    .unwrap();
                let mut out = String::new();
                stream.read_to_string(&mut out).unwrap();
                if let Some(code) = out.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
                    let body = out
                        .split_once("\r\n\r\n")
                        .map(|(_, b)| b.to_string())
                        .unwrap_or_default();
                    return (code, body);
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("no HTTP response from {addr}{path}");
    }

    #[test]
    fn server_serves_endpoints_and_watchdog_flips_healthz() {
        let cfg = TelemetryConfig::new("127.0.0.1:0")
            .poll_interval(Duration::from_millis(10))
            .stall_threshold(Duration::from_millis(60));
        let registry = Arc::new(SnapshotRegistry::new());
        let handle = spawn_server(&cfg, Arc::clone(&registry)).expect("spawn server");

        let cell = registry.register();
        cell.publish(snap(1, 4, true));

        let (code, body) = http_get(handle.addr(), "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("ringsampler_worker_sampled_edges_total"), "{body}");
        let (code, body) = http_get(handle.addr(), "/progress");
        assert_eq!(code, 200);
        assert!(body.contains("\"fleet\""));
        // The /trace tail serves registered flight-recorder rings live.
        let ring = Arc::new(EventRing::new(16));
        ring.record(TraceEvent {
            ts_ns: 1,
            kind: ringstat::EventKind::BatchStart,
            a: 0,
            b: 8,
            c: 0,
            d: 0,
        });
        registry.register_ring(0, Arc::clone(&ring));
        let (code, body) = http_get(handle.addr(), "/trace");
        assert_eq!(code, 200);
        assert!(body.contains("\"batch_start\""), "{body}");
        assert!(body.contains("\"recorded\": 1"), "{body}");
        let (code, _) = http_get(handle.addr(), "/healthz");
        assert_eq!(code, 200);
        assert!(handle.is_healthy());
        let (code, _) = http_get(handle.addr(), "/nope");
        assert_eq!(code, 404);

        // The worker goes silent while active: the deliberate stall.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (code, _) = http_get(handle.addr(), "/healthz");
            if code == 503 {
                break;
            }
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!handle.is_healthy());

        // Progress again: the worker recovers, health returns.
        cell.publish(snap(2, 4, true));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (code, _) = http_get(handle.addr(), "/healthz");
            if code == 200 {
                break;
            }
            assert!(Instant::now() < deadline, "health never recovered");
            std::thread::sleep(Duration::from_millis(20));
        }
        handle.shutdown();
    }
}
