//! Layer-wise sampling (FastGCN/LADIES style) — the extension the paper
//! lists as planned work (§5 "Limitations": "RingSampler currently
//! supports only node-wise GNN sampling, but we are planning to extend it
//! to layer-wise sampling too").
//!
//! Node-wise GraphSAGE samples `fanout` neighbors *per target*, so layer
//! width multiplies by the fanout each hop. Layer-wise sampling instead
//! draws a **fixed number of nodes per layer** for all targets jointly,
//! with probability proportional to (out-)degree — bounding the width and
//! the I/O of deep models.
//!
//! The io_uring mechanics are identical to node-wise sampling: candidate
//! *entry offsets* are drawn first, and only those 4-byte entries are
//! fetched. Candidates are drawn from the union of the targets' offset
//! ranges (which weights nodes by degree exactly), then the fetched
//! neighbor values are deduplicated into the layer's node set and edges
//! are kept for targets whose range produced them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ringsampler_graph::NodeId;

use crate::block::{BatchSample, LayerSample};
use crate::error::Result;
use crate::worker::SamplerWorker;

/// Per-layer node budgets for layer-wise sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerwisePlan {
    /// Number of nodes to draw for each successive layer.
    pub layer_sizes: Vec<usize>,
    /// Oversampling factor: how many candidate entries are drawn per
    /// requested node (collisions and duplicates shrink the draw).
    pub oversample: usize,
}

impl LayerwisePlan {
    /// A plan with the given per-layer node budgets and default 4×
    /// oversampling.
    ///
    /// # Panics
    /// Panics if `layer_sizes` is empty or contains zeros.
    pub fn new(layer_sizes: &[usize]) -> Self {
        assert!(!layer_sizes.is_empty(), "need at least one layer");
        assert!(layer_sizes.iter().all(|&s| s > 0), "zero layer size");
        Self {
            layer_sizes: layer_sizes.to_vec(),
            oversample: 4,
        }
    }
}

impl SamplerWorker {
    /// Samples a mini-batch **layer-wise**: each layer draws
    /// `plan.layer_sizes[l]` nodes (degree-proportional, via uniform
    /// entry-offset draws over the targets' combined ranges) instead of
    /// `fanout` per node.
    ///
    /// The returned [`BatchSample`] has the same shape as node-wise
    /// output, so the GNN substrate consumes it unchanged.
    ///
    /// # Errors
    /// Propagates I/O errors and memory-budget exhaustion.
    pub fn sample_batch_layerwise(
        &mut self,
        seeds: &[NodeId],
        plan: &LayerwisePlan,
        batch_seed: u64,
    ) -> Result<BatchSample> {
        let mut rng = StdRng::seed_from_u64(
            0x4C57 ^ batch_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut targets: Vec<NodeId> = seeds.to_vec();
        let mut layers = Vec::with_capacity(plan.layer_sizes.len());
        for &layer_size in &plan.layer_sizes {
            let layer = self.sample_layerwise_once(&targets, layer_size, plan.oversample, &mut rng)?;
            targets = layer.unique_neighbors();
            layers.push(layer);
            if targets.is_empty() {
                // Remaining layers are empty but must exist for shape.
                while layers.len() < plan.layer_sizes.len() {
                    layers.push(LayerSample::default());
                }
                break;
            }
        }
        Ok(BatchSample { layers })
    }

    fn sample_layerwise_once(
        &mut self,
        targets: &[NodeId],
        layer_size: usize,
        oversample: usize,
        rng: &mut StdRng,
    ) -> Result<LayerSample> {
        // Prefix-sum the targets' degrees so a uniform draw over
        // [0, total) lands in target i's range with p ∝ degree(i) — the
        // degree-proportional layer-wise distribution.
        let graph = self.graph_handle();
        let mut prefix = Vec::with_capacity(targets.len() + 1);
        prefix.push(0u64);
        for &t in targets {
            prefix.push(prefix.last().expect("non-empty") + graph.degree(t));
        }
        let total = *prefix.last().expect("non-empty");
        if total == 0 {
            return Ok(LayerSample {
                fanout: layer_size,
                targets: targets.to_vec(),
                src_pos: Vec::new(),
                dst: Vec::new(),
            });
        }

        let draws = layer_size.saturating_mul(oversample).min(total as usize).max(1);
        // Draw candidate positions in the virtual concatenated range and
        // map them to (target, entry offset).
        let mut picks: Vec<(u32, u64)> = Vec::with_capacity(draws);
        for _ in 0..draws {
            let x = rng.gen_range(0..total);
            let i = match prefix.binary_search(&x) {
                Ok(i) => i,     // x is exactly a boundary: belongs to range i
                Err(i) => i - 1,
            };
            let range = graph.neighbor_range(targets[i]);
            let entry = range.start + (x - prefix[i]);
            picks.push((i as u32, entry));
        }
        // Dedup identical entries (same edge drawn twice).
        picks.sort_unstable_by_key(|&(_, e)| e);
        picks.dedup_by_key(|p| p.1);

        let entries: Vec<u64> = picks.iter().map(|&(_, e)| e).collect();
        let values = self.fetch_entries(&entries)?;

        // Keep edges until `layer_size` distinct neighbor values are
        // collected (scanning in a rng-shuffled order to avoid biasing
        // toward low entry offsets after the sort above).
        let mut order: Vec<usize> = (0..picks.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut kept_nodes: Vec<NodeId> = Vec::new();
        let mut src_pos = Vec::new();
        let mut dst = Vec::new();
        for idx in order {
            let v = values[idx];
            let is_new = !kept_nodes.contains(&v);
            if is_new && kept_nodes.len() >= layer_size {
                continue; // layer is full; only accept edges to kept nodes
            }
            if is_new {
                kept_nodes.push(v);
            }
            src_pos.push(picks[idx].0);
            dst.push(v);
        }
        Ok(LayerSample {
            fanout: layer_size,
            targets: targets.to_vec(),
            src_pos,
            dst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplerConfig;
    use crate::engine::RingSampler;
    use ringsampler_graph::edgefile::write_csr;
    use ringsampler_graph::CsrGraph;

    fn sampler(tag: &str) -> (RingSampler, CsrGraph) {
        let base =
            std::env::temp_dir().join(format!("rs-core-lw-{}-{tag}", std::process::id()));
        let mut edges = Vec::new();
        // Node 0 is a hub (degree 40), the rest have degree v % 5.
        for j in 0..40u32 {
            edges.push((0, (j + 1) % 100));
        }
        for v in 1..100u32 {
            for j in 0..(v % 5) {
                edges.push((v, (v + j + 1) % 100));
            }
        }
        let csr = CsrGraph::from_edges(100, edges).unwrap();
        let g = write_csr(&csr, &base).unwrap();
        let s = RingSampler::new(
            g,
            SamplerConfig::new().fanouts(&[4, 4]).ring_entries(32).seed(1),
        )
        .unwrap();
        (s, csr)
    }

    #[test]
    fn layerwise_sample_is_valid_and_bounded() {
        let (s, csr) = sampler("valid");
        let mut w = s.worker().unwrap();
        let plan = LayerwisePlan::new(&[8, 4]);
        let seeds: Vec<NodeId> = (0..50).collect();
        let b = w.sample_batch_layerwise(&seeds, &plan, 0).unwrap();
        assert_eq!(b.layers.len(), 2);
        for (l, layer) in b.layers.iter().enumerate() {
            // All sampled edges are real edges.
            for (src, dst) in layer.iter_edges() {
                assert!(csr.neighbors(src).contains(&dst), "bad edge {src}->{dst}");
            }
            // Layer width bounded by the plan.
            let width = layer.unique_neighbors().len();
            assert!(
                width <= plan.layer_sizes[l],
                "layer {l} width {width} exceeds {}",
                plan.layer_sizes[l]
            );
        }
    }

    #[test]
    fn layerwise_is_deterministic() {
        let (s, _) = sampler("det");
        let mut w1 = s.worker().unwrap();
        let mut w2 = s.worker().unwrap();
        let plan = LayerwisePlan::new(&[6, 3]);
        let seeds: Vec<NodeId> = (0..30).collect();
        let a = w1.sample_batch_layerwise(&seeds, &plan, 5).unwrap();
        let b = w2.sample_batch_layerwise(&seeds, &plan, 5).unwrap();
        assert_eq!(a, b);
        let c = w2.sample_batch_layerwise(&seeds, &plan, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn hub_nodes_dominate_layerwise_draws() {
        // Degree-proportional sampling must hit the hub's neighbors far
        // more often than a uniform-over-nodes scheme would.
        let (s, csr) = sampler("hub");
        let mut w = s.worker().unwrap();
        let plan = LayerwisePlan::new(&[10]);
        let seeds: Vec<NodeId> = (0..100).collect();
        let mut hub_edges = 0usize;
        let mut total_edges = 0usize;
        for batch in 0..30 {
            let b = w.sample_batch_layerwise(&seeds, &plan, batch).unwrap();
            for (src, _) in b.layers[0].iter_edges() {
                if src == 0 {
                    hub_edges += 1;
                }
                total_edges += 1;
            }
        }
        let hub_degree_share = 40.0 / csr.num_edges() as f64;
        let observed = hub_edges as f64 / total_edges as f64;
        assert!(
            observed > hub_degree_share * 0.5,
            "hub share {observed:.3} far below degree share {hub_degree_share:.3}"
        );
    }

    #[test]
    fn zero_degree_frontier_terminates_early() {
        let base =
            std::env::temp_dir().join(format!("rs-core-lw-zero-{}", std::process::id()));
        // Star: 0 -> {1, 2, 3}, leaves have no out-edges.
        let csr = CsrGraph::from_edges(4, vec![(0, 1), (0, 2), (0, 3)]).unwrap();
        let g = write_csr(&csr, &base).unwrap();
        let s = RingSampler::new(
            g,
            SamplerConfig::new().fanouts(&[2, 2, 2]).ring_entries(8),
        )
        .unwrap();
        let mut w = s.worker().unwrap();
        let plan = LayerwisePlan::new(&[2, 2, 2]);
        let b = w.sample_batch_layerwise(&[0], &plan, 0).unwrap();
        assert_eq!(b.layers.len(), 3);
        assert!(b.layers[0].num_edges() > 0);
        assert_eq!(b.layers[2].num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_plan_rejected() {
        let _ = LayerwisePlan::new(&[]);
    }
}
