//! Byte-accounted memory budget — the reproduction's stand-in for the
//! paper's cgroup memory limits (§4.3).
//!
//! Every sizeable allocation in the sampler (offset index, thread
//! workspaces, page cache) and in the out-of-core baselines (partition
//! buffers, host-side staging) is charged against a [`MemoryBudget`].
//! Exceeding the budget fails the charge, which systems surface exactly
//! like the paper's OOM bars in Figures 4 and 5.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Result, SamplerError};

/// A shareable memory budget with atomic accounting.
///
/// Cloning shares the underlying budget (like processes in one cgroup).
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    limit: u64,
    used: AtomicU64,
    high_water: AtomicU64,
}

impl MemoryBudget {
    /// A budget of `limit` bytes.
    pub fn limited(limit: u64) -> Self {
        Self {
            inner: Arc::new(Inner {
                limit,
                used: AtomicU64::new(0),
                high_water: AtomicU64::new(0),
            }),
        }
    }

    /// An effectively unlimited budget (the "Unlimited" bars of Fig. 5).
    pub fn unlimited() -> Self {
        Self::limited(u64::MAX)
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Currently charged bytes.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Peak charged bytes over the budget's lifetime.
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.inner.limit.saturating_sub(self.used())
    }

    /// Attempts to charge `bytes` for `what`; returns a guard that releases
    /// the charge on drop.
    ///
    /// # Errors
    /// [`SamplerError::OutOfMemory`] if the charge would exceed the limit —
    /// the caller should treat this as the paper treats a cgroup OOM kill.
    pub fn charge(&self, bytes: u64, what: &'static str) -> Result<MemoryCharge> {
        let mut current = self.inner.used.load(Ordering::Relaxed);
        loop {
            let proposed = current.saturating_add(bytes);
            if proposed > self.inner.limit {
                return Err(SamplerError::OutOfMemory {
                    requested: bytes,
                    available: self.inner.limit.saturating_sub(current),
                    what,
                });
            }
            match self.inner.used.compare_exchange_weak(
                current,
                proposed,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.high_water.fetch_max(proposed, Ordering::Relaxed);
                    return Ok(MemoryCharge {
                        budget: self.clone(),
                        bytes,
                    });
                }
                Err(actual) => current = actual,
            }
        }
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// RAII guard for a charged allocation; releases the bytes on drop.
#[derive(Debug)]
pub struct MemoryCharge {
    budget: MemoryBudget,
    bytes: u64,
}

impl MemoryCharge {
    /// Size of this charge in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grows the charge by `extra` bytes in place.
    ///
    /// # Errors
    /// [`SamplerError::OutOfMemory`] if the extra bytes do not fit; the
    /// existing charge is left unchanged.
    pub fn grow(&mut self, extra: u64, what: &'static str) -> Result<()> {
        let g = self.budget.charge(extra, what)?;
        self.bytes += extra;
        std::mem::forget(g); // merged into self; released together on drop
        Ok(())
    }
}

impl Drop for MemoryCharge {
    fn drop(&mut self) {
        self.budget.inner.used.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

/// Parses budget strings like "4GB", "512MB", "unlimited" (Fig. 5 axis
/// labels).
///
/// # Errors
/// [`SamplerError::InvalidConfig`] on unparseable input.
pub fn parse_budget(s: &str) -> Result<MemoryBudget> {
    let t = s.trim().to_ascii_lowercase();
    if t == "unlimited" || t == "inf" || t == "none" {
        return Ok(MemoryBudget::unlimited());
    }
    let (num, mult) = if let Some(p) = t.strip_suffix("gb") {
        (p, 1u64 << 30)
    } else if let Some(p) = t.strip_suffix("mb") {
        (p, 1 << 20)
    } else if let Some(p) = t.strip_suffix("kb") {
        (p, 1 << 10)
    } else if let Some(p) = t.strip_suffix('b') {
        (p, 1)
    } else {
        (t.as_str(), 1)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| SamplerError::InvalidConfig(format!("cannot parse budget {s:?}")))?;
    if v < 0.0 {
        return Err(SamplerError::InvalidConfig(format!(
            "negative budget {s:?}"
        )));
    }
    Ok(MemoryBudget::limited((v * mult as f64) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let b = MemoryBudget::limited(100);
        let g = b.charge(60, "a").unwrap();
        assert_eq!(b.used(), 60);
        assert_eq!(b.available(), 40);
        assert!(b.charge(50, "b").is_err());
        drop(g);
        assert_eq!(b.used(), 0);
        assert_eq!(b.high_water(), 60);
        assert!(b.charge(100, "c").is_ok());
    }

    #[test]
    fn oom_error_carries_details() {
        let b = MemoryBudget::limited(10);
        match b.charge(11, "cache") {
            Err(SamplerError::OutOfMemory {
                requested,
                available,
                what,
            }) => {
                assert_eq!(requested, 11);
                assert_eq!(available, 10);
                assert_eq!(what, "cache");
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn clone_shares_budget() {
        let a = MemoryBudget::limited(100);
        let b = a.clone();
        let _g = a.charge(80, "x").unwrap();
        assert!(b.charge(30, "y").is_err());
        assert_eq!(b.used(), 80);
    }

    #[test]
    fn grow_in_place() {
        let b = MemoryBudget::limited(100);
        let mut g = b.charge(40, "x").unwrap();
        g.grow(40, "x").unwrap();
        assert_eq!(b.used(), 80);
        assert!(g.grow(40, "x").is_err());
        assert_eq!(b.used(), 80);
        drop(g);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn concurrent_charges_are_consistent() {
        let b = MemoryBudget::limited(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Ok(g) = b.charge(3, "t") {
                            drop(g);
                        }
                    }
                });
            }
        });
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn parse_budget_forms() {
        assert_eq!(parse_budget("4GB").unwrap().limit(), 4 << 30);
        assert_eq!(parse_budget("512mb").unwrap().limit(), 512 << 20);
        assert_eq!(parse_budget("10 kb").unwrap().limit(), 10 << 10);
        assert_eq!(parse_budget("123").unwrap().limit(), 123);
        assert_eq!(parse_budget("unlimited").unwrap().limit(), u64::MAX);
        assert!(parse_budget("lots").is_err());
        assert!(parse_budget("-5gb").is_err());
    }

    #[test]
    fn unlimited_never_fails() {
        let b = MemoryBudget::unlimited();
        let _g = b.charge(u64::MAX / 2, "big").unwrap();
        assert!(b.charge(u64::MAX / 4, "more").is_ok());
    }
}
