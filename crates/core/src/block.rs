//! Sample output types: per-layer COO blocks and the inter-layer
//! deduplication step (paper Fig. 1b).

use ringsampler_graph::NodeId;

/// One sampled GNN layer: a bipartite COO block from the layer's target
/// nodes to their sampled neighbors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayerSample {
    /// The fanout this layer was sampled with.
    pub fanout: usize,
    /// The layer's target (seed) nodes, unique.
    pub targets: Vec<NodeId>,
    /// For every sampled edge, the position of its source in `targets`.
    pub src_pos: Vec<u32>,
    /// For every sampled edge, the neighbor's node id (parallel to
    /// `src_pos`).
    pub dst: Vec<NodeId>,
}

impl LayerSample {
    /// Number of sampled edges in this layer.
    pub fn num_edges(&self) -> usize {
        self.dst.len()
    }

    /// Iterates `(source node, sampled neighbor)` pairs.
    ///
    /// # Panics
    /// Panics if the block is internally inconsistent (src_pos out of
    /// range), which indicates a sampler bug.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.src_pos
            .iter()
            .zip(&self.dst)
            .map(move |(&p, &d)| (self.targets[p as usize], d))
    }

    /// The deduplicated neighbor set — the next layer's targets
    /// ("the list of sampled nodes is deduplicated in between layers",
    /// §2.1).
    pub fn unique_neighbors(&self) -> Vec<NodeId> {
        let mut v = self.dst.clone();
        sort_dedup(&mut v);
        v
    }
}

/// The complete multi-layer sample for one mini-batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchSample {
    /// Sampled layers, outermost (seed layer) first.
    pub layers: Vec<LayerSample>,
}

impl BatchSample {
    /// The mini-batch's seed nodes.
    pub fn seeds(&self) -> &[NodeId] {
        self.layers.first().map(|l| l.targets.as_slice()).unwrap_or(&[])
    }

    /// Total sampled edges across all layers.
    pub fn num_sampled_edges(&self) -> usize {
        self.layers.iter().map(LayerSample::num_edges).sum()
    }

    /// Every node appearing anywhere in the sample, deduplicated.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .layers
            .iter()
            .flat_map(|l| l.targets.iter().copied().chain(l.dst.iter().copied()))
            .collect();
        sort_dedup(&mut v);
        v
    }
}

/// Sorts and deduplicates a node list in place (the paper's inter-layer
/// dedup step).
pub fn sort_dedup(nodes: &mut Vec<NodeId>) {
    nodes.sort_unstable();
    nodes.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_layer() -> LayerSample {
        // Paper Fig. 1: target node 1 samples {2, 3, 6}.
        LayerSample {
            fanout: 3,
            targets: vec![1],
            src_pos: vec![0, 0, 0],
            dst: vec![2, 3, 6],
        }
    }

    #[test]
    fn layer_edge_iteration() {
        let l = fig1_layer();
        let edges: Vec<_> = l.iter_edges().collect();
        assert_eq!(edges, vec![(1, 2), (1, 3), (1, 6)]);
        assert_eq!(l.num_edges(), 3);
    }

    #[test]
    fn unique_neighbors_dedups() {
        // Paper Fig. 1 layer 2: sample {10, 14, 12, 5, 10} → {5, 10, 12, 14}.
        let l = LayerSample {
            fanout: 2,
            targets: vec![2, 3, 6],
            src_pos: vec![0, 0, 1, 2, 2],
            dst: vec![10, 14, 12, 5, 10],
        };
        assert_eq!(l.unique_neighbors(), vec![5, 10, 12, 14]);
    }

    #[test]
    fn batch_aggregates() {
        let b = BatchSample {
            layers: vec![
                fig1_layer(),
                LayerSample {
                    fanout: 2,
                    targets: vec![2, 3, 6],
                    src_pos: vec![0, 0, 1, 2, 2],
                    dst: vec![10, 14, 12, 5, 10],
                },
            ],
        };
        assert_eq!(b.seeds(), &[1]);
        assert_eq!(b.num_sampled_edges(), 8);
        assert_eq!(b.all_nodes(), vec![1, 2, 3, 5, 6, 10, 12, 14]);
    }

    #[test]
    fn empty_batch() {
        let b = BatchSample::default();
        assert!(b.seeds().is_empty());
        assert_eq!(b.num_sampled_edges(), 0);
        assert!(b.all_nodes().is_empty());
    }

    #[test]
    fn sort_dedup_basics() {
        let mut v = vec![5, 1, 5, 3, 1];
        sort_dedup(&mut v);
        assert_eq!(v, vec![1, 3, 5]);
        let mut empty: Vec<NodeId> = vec![];
        sort_dedup(&mut empty);
        assert!(empty.is_empty());
    }
}
