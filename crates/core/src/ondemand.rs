//! On-demand (per-request) sampling for near-real-time GNN inference
//! (paper §4.4, Fig. 6).
//!
//! Mini-batch size is forced to 1, simulating individual sampling requests
//! arriving from concurrent clients. Each request's *completion timestamp*
//! (relative to workload start) is logged; Fig. 6's CDF plots the fraction
//! of requests completed by time *t*, so "P50 = 1.15 s" reads "half the
//! nodes were served within 1.15 s of workload start".

use std::sync::Mutex;
use std::time::{Duration, Instant};

use ringsampler_graph::NodeId;

use crate::engine::RingSampler;
use crate::error::Result;
use crate::metrics::EpochReport;

/// Completion-time distribution of an on-demand sampling workload.
#[derive(Debug, Clone)]
pub struct OnDemandReport {
    /// Per-request completion times since workload start, sorted ascending.
    pub completion_times: Vec<Duration>,
    /// Total wall time.
    pub wall: Duration,
    /// Requests served.
    pub requests: usize,
    /// The underlying epoch report (I/O counters, latency histograms,
    /// phase times) for the whole workload.
    pub epoch: EpochReport,
}

impl OnDemandReport {
    /// Completion time by which `fraction` (0..=1) of requests finished —
    /// the paper's P50/P90/P95/P99 values.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn percentile(&self, fraction: f64) -> Duration {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        if self.completion_times.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.completion_times.len() - 1) as f64 * fraction).round() as usize;
        self.completion_times[idx]
    }

    /// Requests served per second of wall time.
    pub fn throughput(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.requests as f64 / s
        }
    }

    /// `(time, fraction completed)` points for plotting the CDF.
    pub fn cdf_points(&self, resolution: usize) -> Vec<(f64, f64)> {
        let n = self.completion_times.len();
        if n == 0 {
            return Vec::new();
        }
        let step = (n / resolution.max(1)).max(1);
        let mut pts = Vec::new();
        let mut i = step - 1;
        while i < n {
            pts.push((
                self.completion_times[i].as_secs_f64(),
                (i + 1) as f64 / n as f64,
            ));
            i += step;
        }
        if pts.last().map(|p| p.1) != Some(1.0) {
            pts.push((self.completion_times[n - 1].as_secs_f64(), 1.0));
        }
        pts
    }
}

impl std::fmt::Display for OnDemandReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {:.3}s ({:.0} req/s); P50 {:.3}s P90 {:.3}s P95 {:.3}s P99 {:.3}s",
            self.requests,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.percentile(0.50).as_secs_f64(),
            self.percentile(0.90).as_secs_f64(),
            self.percentile(0.95).as_secs_f64(),
            self.percentile(0.99).as_secs_f64(),
        )
    }
}

/// Runs the Fig. 6 workload: every target is an independent batch-of-one
/// request; all other configuration (fanouts, threads, ring size) applies
/// unchanged.
///
/// # Errors
/// Propagates sampling errors.
pub fn run_on_demand(sampler: &RingSampler, targets: &[NodeId]) -> Result<OnDemandReport> {
    let cfg = sampler.config().clone().batch_size(1);
    let one = RingSampler::new(sampler.graph().clone(), cfg)?;
    let start = Instant::now();
    let stamps: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(targets.len()));
    let report = one.sample_epoch_with(targets, |_, _sample| {
        stamps.lock().unwrap().push(start.elapsed());
    })?;
    let mut completion_times = stamps.into_inner().unwrap();
    completion_times.sort_unstable();
    Ok(OnDemandReport {
        requests: completion_times.len(),
        completion_times,
        wall: report.wall,
        epoch: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplerConfig;
    use ringsampler_graph::edgefile::write_csr;
    use ringsampler_graph::gen::GeneratorSpec;
    use ringsampler_graph::CsrGraph;

    fn sampler(tag: &str) -> RingSampler {
        let base =
            std::env::temp_dir().join(format!("rs-core-ondemand-{}-{tag}", std::process::id()));
        let spec = GeneratorSpec::PowerLaw {
            nodes: 200,
            edges: 2_000,
            exponent: 0.7,
        };
        let csr =
            CsrGraph::from_edges(200, spec.stream(7).collect::<Vec<_>>()).unwrap();
        let g = write_csr(&csr, &base).unwrap();
        RingSampler::new(
            g,
            SamplerConfig::new().fanouts(&[3, 2]).threads(2).ring_entries(16),
        )
        .unwrap()
    }

    #[test]
    fn serves_every_request() {
        let s = sampler("all");
        let targets: Vec<NodeId> = (0..100).collect();
        let r = run_on_demand(&s, &targets).unwrap();
        assert_eq!(r.requests, 100);
        assert_eq!(r.completion_times.len(), 100);
        // Sorted ascending.
        assert!(r.completion_times.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn percentiles_monotone() {
        let s = sampler("pct");
        let targets: Vec<NodeId> = (0..50).collect();
        let r = run_on_demand(&s, &targets).unwrap();
        let p50 = r.percentile(0.5);
        let p90 = r.percentile(0.9);
        let p99 = r.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(r.percentile(1.0) >= p99);
        assert!(r.to_string().contains("P50"));
    }

    #[test]
    fn cdf_points_reach_one() {
        let s = sampler("cdf");
        let targets: Vec<NodeId> = (0..40).collect();
        let r = run_on_demand(&s, &targets).unwrap();
        let pts = r.cdf_points(10);
        assert!(!pts.is_empty());
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Fractions non-decreasing.
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn bad_fraction_panics() {
        let r = OnDemandReport {
            completion_times: vec![Duration::from_millis(1)],
            wall: Duration::from_millis(1),
            requests: 1,
            epoch: EpochReport::default(),
        };
        let _ = r.percentile(1.5);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = OnDemandReport {
            completion_times: Vec::new(),
            wall: Duration::ZERO,
            requests: 0,
            epoch: EpochReport::default(),
        };
        assert_eq!(r.percentile(0.5), Duration::ZERO);
        assert_eq!(r.throughput(), 0.0);
        assert!(r.cdf_points(10).is_empty());
    }
}
