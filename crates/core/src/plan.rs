//! Read-plan optimizer for the per-layer entry fetch.
//!
//! The paper's core I/O pattern (Fig. 2 steps 4–6) issues one 4-byte read
//! per sampled neighbor. With-replacement sampling of a hub node repeats
//! the *same* entry index many times, and a node's fanout samples often
//! land within bytes of each other inside one neighbor range — i.e. on the
//! same 4 KiB SSD page. The [`ReadPlanner`] turns a layer's raw entry list
//! into a minimal request list:
//!
//! 1. **Sort** a scratch index permutation (never the entries themselves —
//!    `src_pos` alignment in the caller must survive planning).
//! 2. **Dedup** exact repeats: one read serves every duplicate.
//! 3. **Coalesce** runs whose byte extents fall within a configurable gap
//!    threshold (default: one 4 KiB page) into single larger
//!    [`ReadSlice`]s, bounded by [`MAX_COALESCED_BYTES`].
//! 4. Keep a compact **scatter map**: for every original position, the byte
//!    offset of its entry inside the concatenated planned payload, so
//!    completed buffers fan back out to every output slot.
//!
//! All scratch is reused across calls; a planner's steady-state footprint
//! is `O(layer width)`, which is already charged to the worker's workspace
//! — the paper's `O(|V| + threads)` memory bound is preserved.

use ringsampler_io::ReadSlice;

/// Hard cap on a single coalesced slice. Bounds the transient payload a
/// greedy merge can produce on densely-sampled hubs and keeps every planned
/// slice small enough for a registered fixed buffer.
pub const MAX_COALESCED_BYTES: u64 = 64 * 1024;

/// Default coalescing gap: entries within one 4 KiB page-worth of bytes of
/// the previous slice's end are merged (the SSD fetches that page anyway).
pub const DEFAULT_COALESCE_GAP: u32 = 4096;

/// Read-planning policy, selected via `SamplerConfig::read_plan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPlanMode {
    /// Paper-faithful naive plan: one read per sampled entry, in sampling
    /// order. The figure-reproduction binaries run this (default).
    #[default]
    Off,
    /// Sort + deduplicate exact repeats; each unique entry is read once.
    Dedup,
    /// Dedup, then merge slices whose byte extents fall within `gap` bytes
    /// of the previous slice's end into one larger read.
    Coalesce {
        /// Maximum byte gap bridged by a merge. `0` merges only exactly
        /// adjacent extents.
        gap: u32,
    },
}

impl ReadPlanMode {
    /// The default coalescing mode (gap = one 4 KiB page).
    pub fn coalesce() -> Self {
        ReadPlanMode::Coalesce {
            gap: DEFAULT_COALESCE_GAP,
        }
    }

    /// Whether planning is disabled (the naive one-read-per-entry path).
    pub fn is_off(&self) -> bool {
        matches!(self, ReadPlanMode::Off)
    }
}

impl std::str::FromStr for ReadPlanMode {
    type Err = String;

    /// Parses `off`, `dedup`, `coalesce`, or `coalesce:<gap-bytes>`
    /// (case-insensitive) — the format the CLI flags and `RS_READ_PLAN`
    /// environment variable use.
    fn from_str(s: &str) -> std::result::Result<Self, String> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "off" | "naive" | "none" => Ok(ReadPlanMode::Off),
            "dedup" => Ok(ReadPlanMode::Dedup),
            "coalesce" => Ok(ReadPlanMode::coalesce()),
            other => match other.strip_prefix("coalesce:") {
                Some(gap) => gap
                    .parse::<u32>()
                    .map(|gap| ReadPlanMode::Coalesce { gap })
                    .map_err(|e| format!("bad coalesce gap {gap:?}: {e}")),
                None => Err(format!(
                    "unknown read plan {s:?} (expected off|dedup|coalesce|coalesce:<bytes>)"
                )),
            },
        }
    }
}

/// Savings achieved by one planning pass, relative to the naive plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Requests the naive plan would issue (= input entries).
    pub naive_reads: u64,
    /// Requests in the optimized plan.
    pub planned_reads: u64,
    /// Bytes the naive plan would read.
    pub naive_bytes: u64,
    /// Bytes the optimized plan reads (may exceed `naive_bytes` when a
    /// gap merge reads junk between entries — the SQE saving usually wins).
    pub planned_bytes: u64,
}

impl PlanStats {
    /// Requests eliminated relative to the naive plan (never negative:
    /// planning only ever merges requests).
    pub fn reads_saved(&self) -> u64 {
        self.naive_reads.saturating_sub(self.planned_reads)
    }

    /// Bytes of payload no longer transferred (saturates at 0 when gap
    /// merges read more than they save).
    pub fn bytes_saved(&self) -> u64 {
        self.naive_bytes.saturating_sub(self.planned_bytes)
    }

    /// Mean naive requests folded into each planned request (≥ 1.0 when
    /// any planning ran; 0.0 for an empty plan).
    pub fn coalesce_ratio(&self) -> f64 {
        if self.planned_reads == 0 {
            0.0
        } else {
            self.naive_reads as f64 / self.planned_reads as f64
        }
    }

    /// Accumulates another pass's stats into this one.
    pub fn merge(&mut self, other: &PlanStats) {
        self.naive_reads += other.naive_reads;
        self.planned_reads += other.planned_reads;
        self.naive_bytes += other.naive_bytes;
        self.planned_bytes += other.planned_bytes;
    }
}

/// Reusable read-plan builder. One per worker; all scratch survives across
/// layers and epochs so steady-state planning allocates nothing.
#[derive(Debug, Default)]
pub struct ReadPlanner {
    /// Scratch permutation of input positions, sorted by entry value.
    perm: Vec<u32>,
    /// The planned request list, sorted by offset, non-overlapping.
    slices: Vec<ReadSlice>,
    /// Per original input position: byte offset of that entry inside the
    /// concatenation of all planned slices' payloads.
    scatter: Vec<u64>,
}

impl ReadPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The planned request list from the last [`ReadPlanner::plan`] call:
    /// sorted by offset and non-overlapping (after dedup).
    pub fn slices(&self) -> &[ReadSlice] {
        &self.slices
    }

    /// The scatter map from the last [`ReadPlanner::plan`] call: entry `i`
    /// of the original input lives at payload byte `scatter()[i]`.
    pub fn scatter(&self) -> &[u64] {
        &self.scatter
    }

    /// Bytes of scratch currently held (for workspace accounting).
    pub fn scratch_bytes(&self) -> usize {
        self.perm.capacity() * std::mem::size_of::<u32>()
            + self.slices.capacity() * std::mem::size_of::<ReadSlice>()
            + self.scatter.capacity() * std::mem::size_of::<u64>()
    }

    /// Builds a read plan for `entries`, where entry `e` occupies the byte
    /// extent `[base + e·stride, base + e·stride + stride)` of the file —
    /// the layout of both the edge-file entry array (`stride` = 4) and the
    /// page-cache miss list (`stride` = page size).
    ///
    /// After the call, [`ReadPlanner::slices`] holds the request list and
    /// [`ReadPlanner::scatter`] maps every original position into the
    /// concatenated payload. Input order is never modified.
    pub fn plan(
        &mut self,
        entries: &[u64],
        base: u64,
        stride: u32,
        mode: ReadPlanMode,
    ) -> PlanStats {
        let n = entries.len();
        let stride64 = u64::from(stride);
        let mut stats = PlanStats {
            naive_reads: n as u64,
            planned_reads: 0,
            naive_bytes: n as u64 * stride64,
            planned_bytes: 0,
        };
        self.slices.clear();
        self.scatter.clear();

        // Positions must fit the u32 scratch permutation; a layer this wide
        // (> 4 Gi entries) cannot occur under any supported batch/fanout
        // config, but degrade to the naive plan rather than truncate.
        let effective = if n > u32::MAX as usize {
            ReadPlanMode::Off
        } else {
            mode
        };

        if effective.is_off() || n == 0 {
            self.scatter.reserve(n);
            self.slices.reserve(n);
            let mut payload = 0u64;
            for &e in entries {
                self.slices.push(ReadSlice::new(base + e * stride64, stride));
                self.scatter.push(payload);
                payload += stride64;
            }
            stats.planned_reads = n as u64;
            stats.planned_bytes = payload;
            return stats;
        }

        self.scatter.resize(n, 0);
        self.perm.clear();
        self.perm.extend(0..n as u32);
        // Stable ordering is irrelevant (equal entries scatter to the same
        // payload byte); unstable sort avoids the merge-sort scratch buffer.
        self.perm
            .sort_unstable_by_key(|&i| entries.get(i as usize).copied().unwrap_or(u64::MAX));

        let gap = match effective {
            ReadPlanMode::Coalesce { gap } => Some(u64::from(gap)),
            _ => None,
        };

        // Greedy left-to-right merge over the sorted view. `cur` tracks the
        // open slice as (start byte, end byte, payload base).
        let mut payload = 0u64;
        let mut cur: Option<(u64, u64, u64)> = None;
        for &pi in &self.perm {
            let e = entries.get(pi as usize).copied().unwrap_or(0);
            let b = base + e * stride64;
            let merged = match (cur, gap) {
                // Dedup: merge only exact repeats of the open slice's entry.
                (Some((start, _end, pbase)), None) if b == start => Some(pbase),
                // Coalesce: bridge up to `gap` bytes past the open slice's
                // end, as long as the merged extent respects the cap. An
                // entry already inside the extent (duplicate) never grows it
                // and always merges.
                (Some((start, end, pbase)), Some(g))
                    if b <= end.saturating_add(g)
                        && (b + stride64 <= end
                            || b + stride64 - start <= MAX_COALESCED_BYTES) =>
                {
                    Some(pbase)
                }
                _ => None,
            };
            match (merged, &mut cur) {
                (Some(pbase), Some((start, end, _))) => {
                    if b + stride64 > *end {
                        *end = b + stride64;
                    }
                    if let Some(s) = self.scatter.get_mut(pi as usize) {
                        *s = pbase + (b - *start);
                    }
                }
                _ => {
                    // Close the open slice and start a new one at `b`.
                    if let Some((start, end, _)) = cur.take() {
                        self.slices.push(ReadSlice::new(start, (end - start) as u32));
                        payload += end - start;
                    }
                    cur = Some((b, b + stride64, payload));
                    if let Some(s) = self.scatter.get_mut(pi as usize) {
                        *s = payload;
                    }
                }
            }
        }
        if let Some((start, end, _)) = cur.take() {
            self.slices.push(ReadSlice::new(start, (end - start) as u32));
            payload += end - start;
        }

        stats.planned_reads = self.slices.len() as u64;
        stats.planned_bytes = payload;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: simulate the planned reads against a synthetic
    /// file where byte `i` holds `(i % 251) as u8`, then check that the
    /// scatter map recovers exactly the naive per-entry bytes.
    fn check_scatter(planner: &ReadPlanner, entries: &[u64], base: u64, stride: u32) {
        let file_byte = |b: u64| (b % 251) as u8;
        let mut payload = Vec::new();
        for s in planner.slices() {
            for i in 0..s.len as u64 {
                payload.push(file_byte(s.offset + i));
            }
        }
        assert_eq!(planner.scatter().len(), entries.len());
        for (i, &e) in entries.iter().enumerate() {
            let po = planner.scatter()[i] as usize;
            let want: Vec<u8> = (0..stride as u64)
                .map(|k| file_byte(base + e * stride as u64 + k))
                .collect();
            assert_eq!(
                &payload[po..po + stride as usize],
                &want[..],
                "entry {i} (value {e}) scattered wrong"
            );
        }
    }

    fn assert_invariants(planner: &ReadPlanner, n: usize) {
        let slices = planner.slices();
        assert!(slices.len() as u64 <= n as u64, "plan exceeds naive count");
        for w in slices.windows(2) {
            assert!(w[0].offset < w[1].offset, "slices not sorted");
            assert!(
                w[0].offset + w[0].len as u64 <= w[1].offset,
                "slices overlap"
            );
        }
    }

    #[test]
    fn off_mode_is_identity() {
        let entries = [5u64, 1, 5, 9];
        let mut p = ReadPlanner::new();
        let stats = p.plan(&entries, 16, 4, ReadPlanMode::Off);
        assert_eq!(p.slices().len(), 4);
        assert_eq!(p.slices()[0], ReadSlice::new(16 + 20, 4));
        assert_eq!(p.scatter(), &[0, 4, 8, 12]);
        assert_eq!(stats.naive_reads, 4);
        assert_eq!(stats.planned_reads, 4);
        assert_eq!(stats.reads_saved(), 0);
        check_scatter(&p, &entries, 16, 4);
    }

    #[test]
    fn dedup_merges_exact_repeats_only() {
        // 7 appears three times; 3 and 4 are adjacent but must NOT merge.
        let entries = [7u64, 3, 7, 4, 7];
        let mut p = ReadPlanner::new();
        let stats = p.plan(&entries, 0, 4, ReadPlanMode::Dedup);
        assert_eq!(p.slices().len(), 3); // {3, 4, 7}
        assert_eq!(stats.reads_saved(), 2);
        assert_eq!(stats.bytes_saved(), 8);
        assert_invariants(&p, entries.len());
        check_scatter(&p, &entries, 0, 4);
    }

    #[test]
    fn coalesce_zero_gap_merges_adjacent() {
        let entries = [3u64, 4, 10, 11, 12, 40];
        let mut p = ReadPlanner::new();
        let stats = p.plan(&entries, 8, 4, ReadPlanMode::Coalesce { gap: 0 });
        // {3,4} → one 8-byte slice, {10,11,12} → one 12-byte, {40} alone.
        assert_eq!(p.slices().len(), 3);
        assert_eq!(p.slices()[0], ReadSlice::new(8 + 12, 8));
        assert_eq!(p.slices()[1], ReadSlice::new(8 + 40, 12));
        assert_eq!(stats.planned_bytes, 24);
        assert_eq!(stats.naive_bytes, 24);
        assert_invariants(&p, entries.len());
        check_scatter(&p, &entries, 8, 4);
    }

    #[test]
    fn coalesce_bridges_gaps_and_reads_junk() {
        // Entries 0 and 10 are 40 bytes apart: a 64-byte gap bridges them.
        let entries = [0u64, 10];
        let mut p = ReadPlanner::new();
        let stats = p.plan(&entries, 0, 4, ReadPlanMode::Coalesce { gap: 64 });
        assert_eq!(p.slices().len(), 1);
        assert_eq!(p.slices()[0], ReadSlice::new(0, 44));
        assert_eq!(stats.planned_bytes, 44);
        assert_eq!(stats.naive_bytes, 8);
        assert_eq!(stats.bytes_saved(), 0, "gap reads saturate, never wrap");
        assert_eq!(stats.reads_saved(), 1);
        check_scatter(&p, &entries, 0, 4);
    }

    #[test]
    fn coalesce_respects_max_slice_cap() {
        // A contiguous run long enough to exceed the cap must split.
        let n = 2 * MAX_COALESCED_BYTES / 4;
        let entries: Vec<u64> = (0..n).collect();
        let mut p = ReadPlanner::new();
        p.plan(&entries, 0, 4, ReadPlanMode::coalesce());
        assert!(p.slices().len() >= 2);
        for s in p.slices() {
            assert!(s.len as u64 <= MAX_COALESCED_BYTES);
        }
        assert_invariants(&p, entries.len());
        check_scatter(&p, &entries, 0, 4);
    }

    #[test]
    fn duplicates_inside_extent_never_grow_it() {
        let entries = [5u64, 6, 5, 6, 5];
        let mut p = ReadPlanner::new();
        let stats = p.plan(&entries, 0, 4, ReadPlanMode::Coalesce { gap: 0 });
        assert_eq!(p.slices().len(), 1);
        assert_eq!(p.slices()[0], ReadSlice::new(20, 8));
        assert_eq!(stats.reads_saved(), 4);
        check_scatter(&p, &entries, 0, 4);
    }

    #[test]
    fn skewed_duplicates_shrink_plan_dramatically() {
        // Hub pattern: 90% of samples hit entry 1000.
        let mut entries = vec![1000u64; 90];
        entries.extend((0..10u64).map(|i| i * 5000));
        let mut p = ReadPlanner::new();
        let stats = p.plan(&entries, 8, 4, ReadPlanMode::Dedup);
        assert_eq!(stats.naive_reads, 100);
        assert_eq!(stats.planned_reads, 11);
        assert!(stats.coalesce_ratio() > 9.0);
        assert_invariants(&p, entries.len());
        check_scatter(&p, &entries, 8, 4);
    }

    #[test]
    fn empty_input_yields_empty_plan() {
        let mut p = ReadPlanner::new();
        let stats = p.plan(&[], 0, 4, ReadPlanMode::coalesce());
        assert!(p.slices().is_empty());
        assert!(p.scatter().is_empty());
        assert_eq!(stats.planned_reads, 0);
        assert_eq!(stats.coalesce_ratio(), 0.0);
    }

    #[test]
    fn scratch_is_reused_across_plans() {
        let mut p = ReadPlanner::new();
        p.plan(&[1, 2, 3, 4, 5], 0, 4, ReadPlanMode::coalesce());
        let cap = p.scratch_bytes();
        p.plan(&[9, 9], 0, 4, ReadPlanMode::Dedup);
        assert!(p.scratch_bytes() >= cap.min(1), "scratch retained");
        assert_eq!(p.slices().len(), 1);
        check_scatter(&p, &[9, 9], 0, 4);
    }

    #[test]
    fn mode_parsing_roundtrip() {
        assert_eq!("off".parse::<ReadPlanMode>().unwrap(), ReadPlanMode::Off);
        assert_eq!("Dedup".parse::<ReadPlanMode>().unwrap(), ReadPlanMode::Dedup);
        assert_eq!(
            "coalesce".parse::<ReadPlanMode>().unwrap(),
            ReadPlanMode::Coalesce { gap: DEFAULT_COALESCE_GAP }
        );
        assert_eq!(
            "coalesce:128".parse::<ReadPlanMode>().unwrap(),
            ReadPlanMode::Coalesce { gap: 128 }
        );
        assert!("coalesce:x".parse::<ReadPlanMode>().is_err());
        assert!("bogus".parse::<ReadPlanMode>().is_err());
        assert!(ReadPlanMode::default().is_off());
    }

    #[test]
    fn page_stride_plan_for_cached_path() {
        // Pages 3,4,5 adjacent; 9 isolated. Stride = 4096 (page size).
        let pages = [3u64, 4, 5, 9];
        let mut p = ReadPlanner::new();
        let stats = p.plan(&pages, 0, 4096, ReadPlanMode::Coalesce { gap: 0 });
        assert_eq!(p.slices().len(), 2);
        assert_eq!(p.slices()[0], ReadSlice::new(3 * 4096, 3 * 4096));
        assert_eq!(p.slices()[1], ReadSlice::new(9 * 4096, 4096));
        assert_eq!(stats.reads_saved(), 2);
    }
}
