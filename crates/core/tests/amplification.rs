//! Read-amplification acceptance test (DESIGN.md §15): ringprof's
//! kernel-boundary ratio must be *kernel truth*, not bookkeeping. On the
//! pread engine (the one engine whose reads fully increment
//! `/proc/self/io` `rchar`) an uncached epoch reads every sampled entry
//! through the kernel at least once, so `read_amplification >= 1.0`;
//! with the page cache enabled on a reuse-heavy epoch (a tiny graph
//! sampled thousands of times) most entries come from cached pages and
//! the ratio must drop strictly below the uncached one.
//!
//! One `#[test]` body: `rchar` is process-wide, so the two epochs run
//! sequentially in an otherwise-quiet process rather than racing a
//! sibling test's file I/O.

use ringsampler::{CachePolicy, RingSampler, SamplerConfig};
use ringsampler_graph::edgefile::write_csr;
use ringsampler_graph::{CsrGraph, NodeId, OnDiskGraph};
use ringsampler_io::EngineKind;

/// A 96-node graph whose edge file spans only a couple of pages — the
/// regime where page-granular caching pays for its alignment overhead
/// many times over.
fn build_graph(tag: &str) -> OnDiskGraph {
    let base = std::env::temp_dir().join(format!("rs-amp-{}-{tag}", std::process::id()));
    let nodes = 96u32;
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut edges = Vec::new();
    for v in 0..nodes {
        for _ in 0..6 {
            edges.push((v, (next() % nodes as u64) as u32));
        }
    }
    let csr = CsrGraph::from_edges(nodes as usize, edges).unwrap();
    write_csr(&csr, &base).unwrap()
}

fn config(cache: CachePolicy) -> SamplerConfig {
    SamplerConfig::new()
        .fanouts(&[5, 3])
        .ring_entries(8)
        .threads(2)
        .batch_size(8)
        .with_replacement(true)
        .engine(EngineKind::Pread)
        .cache(cache)
        .seed(0xFEED)
}

fn targets() -> Vec<NodeId> {
    (0..2048u32).map(|i| i % 96).collect()
}

#[test]
fn pread_amplification_is_at_least_one_uncached_and_lower_cached() {
    // Skip (loudly) where procfs is unavailable: the counters read as
    // zero there and every ratio degrades to 0 by design.
    if std::fs::read_to_string("/proc/self/io").is_err() {
        eprintln!("skipping: /proc/self/io unavailable");
        return;
    }

    let uncached = RingSampler::new(build_graph("uncached"), config(CachePolicy::None)).unwrap();
    let report = uncached.sample_epoch(&targets()).expect("uncached epoch");
    let res = report.resources.as_ref().expect("profiling defaults on");
    let amp_uncached = res.read_amplification();
    assert!(res.logical_bytes > 0, "epoch sampled nothing");
    assert!(
        amp_uncached >= 1.0,
        "uncached pread epoch must cross the kernel boundary at least once \
         per logical byte, got {amp_uncached:.4} \
         (rchar {} / logical {})",
        res.physical_rchar,
        res.logical_bytes
    );

    let cached = RingSampler::new(
        build_graph("cached"),
        config(CachePolicy::Page {
            budget_bytes: 1 << 20,
        }),
    )
    .unwrap();
    let report = cached.sample_epoch(&targets()).expect("cached epoch");
    let res = report.resources.as_ref().expect("profiling defaults on");
    let amp_cached = res.read_amplification();
    assert!(
        amp_cached < amp_uncached,
        "page cache must strictly reduce kernel-boundary amplification: \
         cached {amp_cached:.4} vs uncached {amp_uncached:.4}"
    );
    assert!(
        report.metrics.cache_hits > 0,
        "reuse-heavy epoch must actually hit the cache"
    );
}
