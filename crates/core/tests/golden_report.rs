//! Golden-file tests pinning the exact bytes of the machine-readable
//! report formats. Downstream consumers (dashboards, the paper-figure
//! scripts, Prometheus scrapers) parse these — any change to the JSON
//! schema or the exposition format must be deliberate and show up in
//! review as a golden-file diff.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p ringsampler --test golden_report`

use std::path::PathBuf;
use std::time::Duration;

use ringsampler::{EpochReport, RingMode, SampleMetrics, WorkerResources, WorkerStats};
use ringsampler_io::RingSetupInfo;
use ringstat::{EventKind, Phase, PromWriter, ResourceSample, SpanLog, TimeLedger, TraceEvent};

/// A fully deterministic report: fixed counters, fixed histogram samples,
/// fixed span timestamps. No clocks involved.
fn golden_report() -> EpochReport {
    let mut worker = WorkerStats {
        metrics: SampleMetrics {
            batches: 4,
            layers: 8,
            targets: 512,
            sampled_edges: 2_048,
            io_requests: 1_024,
            io_bytes: 4 << 20,
            io_groups: 32,
            syscalls: 16,
            cache_hits: 100,
            cache_misses: 28,
            prepare_nanos: 1_000_000,
            complete_nanos: 3_000_000,
            reads_planned: 768,
            reads_saved: 256,
            bytes_saved: 1_024,
            fixed_buf_reads: 512,
            regbuf_fallbacks: 1,
            bufring_reads: 256,
            bufring_recycles: 256,
            ring_mode_fallbacks: 1,
        },
        ring_mode: RingMode::DeferTaskrun,
        ring_setup: RingSetupInfo {
            // COOP_TASKRUN | DEFER_TASKRUN | SINGLE_ISSUER requested,
            // SINGLE_ISSUER refused — a representative partial grant.
            requested_flags: (1 << 8) | (1 << 13) | (1 << 12),
            granted_flags: (1 << 8) | (1 << 13),
            ring_fd_registered: true,
            buf_ring_active: false,
            lazy_submission: true,
        },
        ..Default::default()
    };
    for v in [1_000u64, 2_000, 4_000, 8_000, 150_000] {
        worker.group_latency.record(v);
    }
    for v in [500_000u64, 600_000, 900_000, 1_200_000] {
        worker.batch_latency.record(v);
    }
    for v in [200u64, 400, 90_000] {
        worker.cq_wait.record(v);
    }
    worker.phases.add(Phase::Prepare, 400_000);
    worker.phases.add(Phase::Submit, 600_000);
    worker.phases.add(Phase::Complete, 3_000_000);
    worker.phases.add(Phase::Aggregate, 250_000);
    let mut spans = SpanLog::with_capacity(4);
    spans.record_at("batch", 0, 1_000_000);
    spans.record_at("io_group", 120_000, 80_000);
    worker.spans = spans;
    let ev = |ts_ns: u64, kind: EventKind, a: u64, b: u64, c: u64, d: u64| TraceEvent {
        ts_ns,
        kind,
        a,
        b,
        c,
        d,
    };
    worker.events = vec![
        ev(0, EventKind::BatchStart, 0, 128, 0, 0),
        ev(50_000, EventKind::SampleDone, 10, 640, 45_000, 0),
        ev(80_000, EventKind::PlanBuilt, 640, 480, 640, 28_000),
        ev(120_000, EventKind::GroupSubmit, 1, 32, 32, 9_000),
        ev(200_000, EventKind::GroupComplete, 1, 71_000, 60_000, 11_000),
        ev(230_000, EventKind::ScatterDone, 640, 25_000, 0, 0),
        ev(1_000_000, EventKind::BatchEnd, 0, 1_000_000, 2, 0),
    ];
    worker.trace_dropped = 2;
    // A deterministic ringprof interval: 250 ms wall, 240 ms on-CPU (a
    // healthy, conserving ledger), stages as recorded above. No clocks
    // involved.
    let sample = ResourceSample {
        cpu_nanos: 240_000_000,
        user_nanos: 200_000_000,
        sys_nanos: 40_000_000,
        vol_ctx_switches: 40,
        invol_ctx_switches: 8,
        minor_faults: 1_200,
        major_faults: 3,
        proc_read_bytes: 2 << 20,
        proc_rchar: 5 << 20,
    };
    let phases = worker.phases;
    worker.resources = Some(WorkerResources {
        wall_nanos: 250_000_000,
        ledger: TimeLedger::build(250_000_000, &phases, sample.cpu_nanos),
        logical_bytes: 2_048 * 8,
        sample,
    });
    let mut report = worker.into_epoch_report(Duration::from_millis(250));
    // The engine fills the process-wide bracket after absorbing workers.
    let res = report.resources.as_mut().unwrap();
    res.physical_rchar = 5 << 20;
    res.physical_read_bytes = 2 << 20;
    res.logical_bytes = 2_048 * 8;
    report
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted from the golden file; if the format change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn json_schema_is_pinned() {
    check_golden("report.json", &golden_report().to_json());
}

#[test]
fn prometheus_format_is_pinned() {
    let mut w = PromWriter::new();
    golden_report().write_prometheus(&mut w, &[("run", "golden")]);
    check_golden("report.prom", &w.finish());
}

#[test]
fn chrome_trace_is_pinned() {
    check_golden("trace.json", &golden_report().to_chrome_trace());
}

#[test]
fn trace_events_dump_is_pinned() {
    // The `--trace-events` artifact the `ringtrace` analyzer consumes:
    // wire-stable kind names and per-thread event lists.
    check_golden(
        "trace_events.json",
        &golden_report().trace_events_json_value().to_string_pretty(),
    );
}
