//! Live congestion-detection acceptance test (DESIGN.md §14): a real
//! two-worker epoch with one artificially throttled worker must produce
//! a non-`ok` verdict on exactly that worker — observable on the live
//! `GET /congestion` endpoint mid-run and recorded as episodes in the
//! final [`EpochReport`] — while an unthrottled epoch stays all-`ok`.
//! A third phase checks the zero-interference invariant: enabling
//! telemetry with history changes no sampled byte.
//!
//! All phases share one `#[test]` body: the engine's telemetry server is
//! process-global (first config wins), so the phases run sequentially
//! against the same registry rather than racing each other's epochs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ringsampler::telemetry::CongestionState;
use ringsampler::{EpochReport, RingSampler, SamplerConfig, TelemetryConfig};
use ringsampler_graph::edgefile::write_csr;
use ringsampler_graph::{CsrGraph, NodeId, OnDiskGraph};
use ringstat::Json;

fn build_graph(tag: &str) -> OnDiskGraph {
    let base = std::env::temp_dir().join(format!("rs-congestion-{}-{tag}", std::process::id()));
    let nodes = 96u32;
    // Deterministic xorshift so both phases sample identical structure.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut edges = Vec::new();
    for v in 0..nodes {
        for _ in 0..6 {
            edges.push((v, (next() % nodes as u64) as u32));
        }
    }
    let csr = CsrGraph::from_edges(nodes as usize, edges).unwrap();
    write_csr(&csr, &base).unwrap()
}

fn config(telemetry: bool) -> SamplerConfig {
    let mut cfg = SamplerConfig::new()
        .fanouts(&[5, 3])
        .ring_entries(8)
        .threads(2)
        .batch_size(8)
        .seed(0xFEED);
    if telemetry {
        cfg = cfg.telemetry(
            TelemetryConfig::new("127.0.0.1:0")
                .poll_interval(Duration::from_millis(10))
                .history_capacity(256),
        );
    }
    cfg
}

/// 40 batches over 96 nodes: workers 0 and 1 own 20 each
/// (round-robin by batch index).
fn targets() -> Vec<NodeId> {
    (0..320u32).map(|i| i % 96).collect()
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .ok()?;
    let mut out = String::new();
    stream.read_to_string(&mut out).ok()?;
    out.split_once("\r\n\r\n").map(|(_, body)| body.to_string())
}

/// Runs one epoch with a per-worker `on_batch` sleep and a background
/// `/congestion` poller; returns the report and every `(worker, state)`
/// pair observed live.
fn run_epoch(sampler: &RingSampler, slow_ms: [u64; 2]) -> (EpochReport, Vec<(u64, String)>) {
    let addr = sampler.telemetry().expect("telemetry on").addr();
    let done = AtomicBool::new(false);
    let seen: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let report = std::thread::scope(|scope| {
        let poller = scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                if let Some(body) = http_get(addr, "/congestion") {
                    if let Ok(doc) = Json::parse(&body) {
                        let workers = doc.get("workers").and_then(Json::as_array).unwrap_or(&[]);
                        let mut seen = seen.lock().unwrap();
                        for w in workers {
                            let worker = w.get("worker").and_then(Json::as_u64).unwrap_or(0);
                            let state = w
                                .get("state")
                                .and_then(Json::as_str)
                                .unwrap_or("?")
                                .to_string();
                            seen.push((worker, state));
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(15));
            }
        });
        let report = sampler
            .sample_epoch_with(&targets(), |idx, _sample| {
                // The throttle: the callback runs on the owning worker's
                // thread, so sleeping here slows exactly one worker.
                std::thread::sleep(Duration::from_millis(slow_ms[idx % 2]));
            })
            .expect("epoch");
        done.store(true, Ordering::Release);
        poller.join().unwrap();
        report
    });
    (report, seen.into_inner().unwrap())
}

#[test]
fn throttled_worker_is_convicted_and_unthrottled_fleet_stays_ok() {
    // Phase 1 — throttled: worker 1 runs at a fifth of worker 0's pace.
    let sampler = RingSampler::new(build_graph("throttled"), config(true)).unwrap();
    let (report, observed) = run_epoch(&sampler, [10, 50]);
    let non_ok: Vec<&(u64, String)> = observed.iter().filter(|(_, s)| s != "ok").collect();
    assert!(
        non_ok.iter().any(|(w, _)| *w == 1),
        "throttled worker 1 never showed a non-ok verdict on /congestion; observed {observed:?}"
    );
    assert!(
        non_ok.iter().all(|(w, _)| *w == 1),
        "only worker 1 is throttled, but others were convicted: {non_ok:?}"
    );
    assert!(
        !report.congestion.is_empty(),
        "the final report must record the congestion episodes"
    );
    assert!(
        report.congestion.iter().all(|e| e.worker == 1),
        "episodes must name the throttled worker only: {:?}",
        report.congestion
    );
    for e in &report.congestion {
        assert!(e.end_ms >= e.start_ms, "episode bounds inverted: {e:?}");
        assert_ne!(e.state, CongestionState::Ok, "episodes are non-ok by construction");
    }

    // Phase 2 — evenly loaded: the same brief pause on both workers.
    // Every live verdict and the final report must stay clean.
    let sampler = RingSampler::new(build_graph("even"), config(true)).unwrap();
    let (report, observed) = run_epoch(&sampler, [10, 10]);
    assert!(
        observed.iter().all(|(_, s)| s == "ok"),
        "balanced fleet was convicted: {:?}",
        observed.iter().filter(|(_, s)| s != "ok").collect::<Vec<_>>()
    );
    assert!(
        report.congestion.is_empty(),
        "balanced fleet must record no episodes: {:?}",
        report.congestion
    );

    // Phase 3 — zero interference: telemetry with history enabled must
    // not change a single sampled byte versus telemetry off.
    let with_telemetry = RingSampler::new(build_graph("obs-a"), config(true)).unwrap();
    let without = RingSampler::new(build_graph("obs-b"), config(false)).unwrap();
    let collect = |sampler: &RingSampler| {
        let samples = Mutex::new(Vec::new());
        sampler
            .sample_epoch_with(&targets(), |idx, sample| {
                samples.lock().unwrap().push((idx, sample));
            })
            .expect("epoch");
        let mut samples = samples.into_inner().unwrap();
        samples.sort_by_key(|(idx, _)| *idx);
        samples
    };
    assert_eq!(
        collect(&with_telemetry),
        collect(&without),
        "sampling output must be byte-identical with telemetry history on vs off"
    );
}
