//! Golden-file tests pinning the exact bytes of the `ringscope` live
//! endpoints (`GET /metrics`, `GET /progress`, `GET /trace`) against a
//! fixed two-worker snapshot registry. The documents are rendered by the
//! same pure functions the telemetry thread calls, with all
//! time-dependent inputs (rates, ETA) fixed — so the goldens are
//! byte-stable.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p ringsampler --test golden_telemetry`

use std::path::PathBuf;
use std::sync::Arc;

use ringsampler::telemetry::{
    metrics_document, progress_document, trace_document, FleetRates, SnapshotRegistry,
};
use ringstat::{EventKind, EventRing, TraceEvent, WorkerSnapshot};

/// The fixed two-worker fleet: worker 0 mid-epoch with reads in flight,
/// worker 1 further along. Deterministic histogram samples, no clocks.
fn golden_registry() -> Arc<SnapshotRegistry> {
    let registry = Arc::new(SnapshotRegistry::new());
    let cells = registry.reset_epoch(2);

    let mut w0 = WorkerSnapshot::new();
    w0.epoch = 1;
    w0.batches = 3;
    w0.total_batches = 8;
    w0.targets = 384;
    w0.sampled_nodes = 960;
    w0.sampled_edges = 1_536;
    w0.bytes_read = 6_144;
    w0.reads_submitted = 1_536;
    w0.reads_completed = 1_532;
    w0.inflight = 4;
    w0.io_groups = 12;
    w0.active = true;
    // Partial grant: COOP|DEFER|SINGLE_ISSUER requested, SINGLE_ISSUER
    // refused — the live fallback signal the /metrics consumer watches.
    w0.ring_requested_flags = (1 << 8) | (1 << 13) | (1 << 12);
    w0.ring_granted_flags = (1 << 8) | (1 << 13);
    for v in [500_000u64, 600_000, 900_000] {
        w0.batch_latency.record(v);
    }
    cells[0].publish(w0);

    let mut w1 = WorkerSnapshot::new();
    w1.epoch = 1;
    w1.batches = 5;
    w1.total_batches = 8;
    w1.targets = 640;
    w1.sampled_nodes = 1_600;
    w1.sampled_edges = 2_560;
    w1.bytes_read = 10_240;
    w1.reads_submitted = 2_560;
    w1.reads_completed = 2_560;
    w1.inflight = 0;
    w1.io_groups = 20;
    w1.active = true;
    // Full grant: requested == granted.
    w1.ring_requested_flags = (1 << 8) | (1 << 13) | (1 << 12);
    w1.ring_granted_flags = (1 << 8) | (1 << 13) | (1 << 12);
    for v in [400_000u64, 500_000, 700_000, 800_000, 1_100_000] {
        w1.batch_latency.record(v);
    }
    cells[1].publish(w1);

    // Flight-recorder rings: worker 0 mid-batch (submit without its
    // complete yet), worker 1 with one full group lifecycle and a drop.
    let ev = |ts_ns: u64, kind: EventKind, a: u64, b: u64, c: u64, d: u64| TraceEvent {
        ts_ns,
        kind,
        a,
        b,
        c,
        d,
    };
    let r0 = Arc::new(EventRing::new(8));
    r0.record(ev(1_000, EventKind::BatchStart, 2, 128, 0, 0));
    r0.record(ev(1_500, EventKind::SampleDone, 10, 640, 450, 0));
    r0.record(ev(1_800, EventKind::PlanBuilt, 640, 320, 1_280, 250));
    r0.record(ev(2_000, EventKind::GroupSubmit, 6, 32, 32, 150));
    registry.register_ring(0, r0);
    let r1 = Arc::new(EventRing::new(2));
    r1.record(ev(900, EventKind::GroupSubmit, 9, 32, 32, 140));
    r1.record(ev(4_000, EventKind::GroupComplete, 9, 3_100, 2_600, 500));
    r1.record(ev(4_200, EventKind::ScatterDone, 640, 180, 0, 0)); // dropped
    registry.register_ring(1, r1);

    registry
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted from the golden file; if the format change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn metrics_endpoint_body_is_pinned() {
    let registry = golden_registry();
    let doc = metrics_document(&registry.observe(), &registry.observe_traces(0));
    // Acceptance criteria: per-worker sampled-edge counters and in-flight
    // SQE gauges are present before byte-pinning the whole document.
    assert!(doc.contains(r#"ringsampler_worker_sampled_edges_total{worker="0"} 1536"#));
    assert!(doc.contains(r#"ringsampler_worker_sampled_edges_total{worker="1"} 2560"#));
    assert!(doc.contains(r#"ringsampler_worker_inflight_reads{worker="0"} 4"#));
    assert!(doc.contains(r#"ringsampler_worker_inflight_reads{worker="1"} 0"#));
    assert!(doc.contains(r#"ringsampler_trace_recorded_total{worker="0"} 4"#));
    assert!(doc.contains(r#"ringsampler_trace_dropped_total{worker="1"} 1"#));
    check_golden("telemetry_metrics.prom", &doc);
}

#[test]
fn trace_endpoint_body_is_pinned() {
    let doc = trace_document(&golden_registry().observe_traces(256));
    // The tail must carry the full group lifecycle with stage-attributed
    // payload fields before byte-pinning the whole document.
    assert!(doc.contains("\"kind\": \"group_submit\""));
    assert!(doc.contains("\"kind\": \"group_complete\""));
    assert!(doc.contains("\"dropped\": 1"));
    check_golden("telemetry_trace.json", &doc);
}

#[test]
fn progress_endpoint_body_is_pinned() {
    // Rates are inputs, not clock readings — fixed for the golden.
    let rates = FleetRates {
        edges_per_sec: 4_096.0,
        batches_per_sec: 8.0,
        eta_seconds: Some(1.0),
    };
    let doc = progress_document(&golden_registry().observe(), &[], &rates);
    assert!(doc.contains("\"batches\": 8"));
    assert!(doc.contains("\"total_batches\": 16"));
    check_golden("telemetry_progress.json", &doc);
}
