//! Golden-file tests pinning the exact bytes of the `ringscope` live
//! endpoints (`GET /metrics`, `GET /progress`, `GET /trace`,
//! `GET /history`, `GET /congestion`) against a fixed two-worker
//! snapshot registry. The documents are rendered by the same pure
//! functions the telemetry thread calls, with all time-dependent inputs
//! (rates, ETA, uptime, history timestamps) fixed — so the goldens are
//! byte-stable. The history/congestion goldens additionally travel the
//! real registry → HTTP route: the bytes asserted are the body a live
//! `ringtop` would receive.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p ringsampler --test golden_telemetry`

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ringsampler::telemetry::{
    congestion_document, metrics_document, progress_document, spawn_server, trace_document,
    CongestionConfig, CongestionDetector, FleetRates, MetricsExtras, SnapshotRegistry,
    TelemetryConfig, WorkerObservation,
};
use ringstat::{EventKind, EventRing, TraceEvent, WorkerSnapshot};

/// The fixed two-worker fleet: worker 0 mid-epoch with reads in flight,
/// worker 1 further along. Deterministic histogram samples, no clocks.
fn golden_registry() -> Arc<SnapshotRegistry> {
    let registry = Arc::new(SnapshotRegistry::new());
    let cells = registry.reset_epoch(2);

    let mut w0 = WorkerSnapshot::new();
    w0.epoch = 1;
    w0.batches = 3;
    w0.total_batches = 8;
    w0.targets = 384;
    w0.sampled_nodes = 960;
    w0.sampled_edges = 1_536;
    w0.bytes_read = 6_144;
    w0.reads_submitted = 1_536;
    w0.reads_completed = 1_532;
    w0.inflight = 4;
    w0.io_groups = 12;
    w0.cpu_nanos = 2_000_000;
    w0.active = true;
    // Partial grant: COOP|DEFER|SINGLE_ISSUER requested, SINGLE_ISSUER
    // refused — the live fallback signal the /metrics consumer watches.
    w0.ring_requested_flags = (1 << 8) | (1 << 13) | (1 << 12);
    w0.ring_granted_flags = (1 << 8) | (1 << 13);
    for v in [500_000u64, 600_000, 900_000] {
        w0.batch_latency.record(v);
    }
    cells[0].publish(w0);

    let mut w1 = WorkerSnapshot::new();
    w1.epoch = 1;
    w1.batches = 5;
    w1.total_batches = 8;
    w1.targets = 640;
    w1.sampled_nodes = 1_600;
    w1.sampled_edges = 2_560;
    w1.bytes_read = 10_240;
    w1.reads_submitted = 2_560;
    w1.reads_completed = 2_560;
    w1.inflight = 0;
    w1.io_groups = 20;
    w1.cpu_nanos = 3_500_000;
    w1.active = true;
    // Full grant: requested == granted.
    w1.ring_requested_flags = (1 << 8) | (1 << 13) | (1 << 12);
    w1.ring_granted_flags = (1 << 8) | (1 << 13) | (1 << 12);
    for v in [400_000u64, 500_000, 700_000, 800_000, 1_100_000] {
        w1.batch_latency.record(v);
    }
    cells[1].publish(w1);

    // Flight-recorder rings: worker 0 mid-batch (submit without its
    // complete yet), worker 1 with one full group lifecycle and a drop.
    let ev = |ts_ns: u64, kind: EventKind, a: u64, b: u64, c: u64, d: u64| TraceEvent {
        ts_ns,
        kind,
        a,
        b,
        c,
        d,
    };
    let r0 = Arc::new(EventRing::new(8));
    r0.record(ev(1_000, EventKind::BatchStart, 2, 128, 0, 0));
    r0.record(ev(1_500, EventKind::SampleDone, 10, 640, 450, 0));
    r0.record(ev(1_800, EventKind::PlanBuilt, 640, 320, 1_280, 250));
    r0.record(ev(2_000, EventKind::GroupSubmit, 6, 32, 32, 150));
    registry.register_ring(0, r0);
    let r1 = Arc::new(EventRing::new(2));
    r1.record(ev(900, EventKind::GroupSubmit, 9, 32, 32, 140));
    r1.record(ev(4_000, EventKind::GroupComplete, 9, 3_100, 2_600, 500));
    r1.record(ev(4_200, EventKind::ScatterDone, 640, 180, 0, 0)); // dropped
    registry.register_ring(1, r1);

    registry
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted from the golden file; if the format change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Fixed non-registry inputs of the `/metrics` document (uptime, build
/// version, congestion roll-up) — the live server reads these from
/// clocks and the episode tracker; the golden pins a representative set.
fn golden_extras() -> MetricsExtras {
    MetricsExtras {
        uptime_seconds: 12.5,
        version: "0.1.0".to_string(),
        congestion_states: vec![
            (0, ringsampler::telemetry::CongestionState::Ok),
            (1, ringsampler::telemetry::CongestionState::Straggler),
        ],
        congestion_episodes: vec![(0, 0), (1, 2)],
    }
}

#[test]
fn metrics_endpoint_body_is_pinned() {
    let registry = golden_registry();
    let doc = metrics_document(&registry.observe(), &registry.observe_traces(0), &golden_extras());
    // Satellite acceptance: uptime gauge and build-info family are part
    // of the pinned bytes.
    assert!(doc.contains("ringsampler_uptime_seconds 12.5"));
    assert!(doc.contains(r#"ringsampler_build_info{version="0.1.0"} 1"#));
    assert!(doc.contains(r#"ringsampler_worker_congestion_state{worker="1",state="straggler"} 1"#));
    assert!(doc.contains(r#"ringsampler_congestion_episodes_total{worker="1"} 2"#));
    // Acceptance criteria: per-worker sampled-edge counters and in-flight
    // SQE gauges are present before byte-pinning the whole document.
    assert!(doc.contains(r#"ringsampler_worker_sampled_edges_total{worker="0"} 1536"#));
    assert!(doc.contains(r#"ringsampler_worker_sampled_edges_total{worker="1"} 2560"#));
    assert!(doc.contains(r#"ringsampler_worker_inflight_reads{worker="0"} 4"#));
    assert!(doc.contains(r#"ringsampler_worker_inflight_reads{worker="1"} 0"#));
    assert!(doc.contains(r#"ringsampler_trace_recorded_total{worker="0"} 4"#));
    assert!(doc.contains(r#"ringsampler_trace_dropped_total{worker="1"} 1"#));
    check_golden("telemetry_metrics.prom", &doc);
}

#[test]
fn trace_endpoint_body_is_pinned() {
    let doc = trace_document(&golden_registry().observe_traces(256));
    // The tail must carry the full group lifecycle with stage-attributed
    // payload fields before byte-pinning the whole document.
    assert!(doc.contains("\"kind\": \"group_submit\""));
    assert!(doc.contains("\"kind\": \"group_complete\""));
    assert!(doc.contains("\"dropped\": 1"));
    check_golden("telemetry_trace.json", &doc);
}

#[test]
fn progress_endpoint_body_is_pinned() {
    // Rates are inputs, not clock readings — fixed for the golden. The
    // windowed and lifetime figures intentionally differ: the fleet
    // slowed down, and `/progress` must show both.
    let rates = FleetRates {
        edges_per_sec: 4_096.0,
        batches_per_sec: 8.0,
        eta_seconds: Some(1.0),
        lifetime_edges_per_sec: 6_144.0,
        lifetime_batches_per_sec: 12.0,
    };
    let doc = progress_document(&golden_registry().observe(), &[], &rates);
    assert!(doc.contains("\"batches\": 8"));
    assert!(doc.contains("\"total_batches\": 16"));
    assert!(doc.contains("\"edges_per_sec\": 4096.0"));
    assert!(doc.contains("\"lifetime_edges_per_sec\": 6144.0"));
    check_golden("telemetry_progress.json", &doc);
}

/// Builds the fixed history timeline: six 250 ms-spaced points per
/// worker, worker 0 progressing at full rate, worker 1 at a tenth of it
/// (the straggler the congestion golden convicts). Timestamps are
/// synthetic, so the appended points — and everything derived from
/// them — are byte-stable.
fn push_golden_history(registry: &SnapshotRegistry) {
    registry.set_history_capacity(16);
    for i in 0..6u64 {
        let obs: Vec<WorkerObservation> = [(0usize, 1u64), (1usize, 10u64)]
            .iter()
            .map(|&(index, div)| {
                let mut s = WorkerSnapshot::new();
                s.epoch = 1;
                s.batches = 4 * i / div;
                s.total_batches = 64;
                s.targets = 512 * i / div;
                s.sampled_edges = 2_048 * i / div;
                s.bytes_read = 8_192 * i / div;
                s.inflight = 16 + 4 * i;
                s.io_groups = 8 * i / div;
                s.reads_submitted = 256 * i / div;
                s.reads_completed = 256 * i / div;
                s.prepare_nanos = 40_000_000 * i / div;
                s.complete_nanos = 10_000_000 * i / div;
                // ringprof column: worker 0 busy (~180/250 ms on-CPU per
                // interval), the straggler mostly idle.
                s.cpu_nanos = 180_000_000 * i / div;
                s.active = true;
                s.batch_latency.record(700_000 + 50_000 * i);
                WorkerObservation {
                    index,
                    version: 2 * (i + 1),
                    snapshot: Some(s),
                }
            })
            .collect();
        registry.append_history(&obs, 250 * i);
    }
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    for _ in 0..50 {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            stream
                .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            if let Some(code) = out.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
                let body = out.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
                return (code, body.to_string());
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server never answered {path}");
}

#[test]
fn history_endpoint_body_is_pinned_through_http() {
    let registry = Arc::new(SnapshotRegistry::new());
    // History capacity 0 in the config keeps the server's own sampler
    // off (its points would carry wall-clock timestamps); the fixture
    // pushes a synthetic timeline instead, and the `/history` route
    // serves whatever the registry holds.
    let cfg = TelemetryConfig::new("127.0.0.1:0")
        .poll_interval(Duration::from_millis(10))
        .history_capacity(0);
    let handle = spawn_server(&cfg, Arc::clone(&registry)).expect("spawn server");
    push_golden_history(&registry);

    let (code, body) = http_get(handle.addr(), "/history?window=8");
    assert_eq!(code, 200);
    assert!(body.contains("\"t_ms\": 1250"));
    assert!(body.contains("\"edges_per_sec\": 8192.0"), "{body}");
    check_golden("telemetry_history.json", &body);

    // The worker filter narrows the document to the requested series.
    let (code, filtered) = http_get(handle.addr(), "/history?worker=1&window=8");
    assert_eq!(code, 200);
    assert!(filtered.contains("\"worker\": 1"));
    assert!(!filtered.contains("\"worker\": 0"));
    handle.shutdown();
}

#[test]
fn resources_endpoint_body_is_pinned_through_http() {
    use ringsampler::{EpochReport, ResourceReport, WorkerResources};
    use ringstat::{Json, Phase, PhaseTimes, ResourceSample, TimeLedger};

    // The same deterministic ringprof interval the report golden pins:
    // 250 ms wall, 240 ms on-CPU, fixed stage walls. The engine renders
    // this exact document at epoch join and publishes it verbatim.
    let mut phases = PhaseTimes::new();
    phases.add(Phase::Prepare, 400_000);
    phases.add(Phase::Submit, 600_000);
    phases.add(Phase::Complete, 3_000_000);
    phases.add(Phase::Aggregate, 250_000);
    let sample = ResourceSample {
        cpu_nanos: 240_000_000,
        user_nanos: 200_000_000,
        sys_nanos: 40_000_000,
        vol_ctx_switches: 40,
        invol_ctx_switches: 8,
        minor_faults: 1_200,
        major_faults: 3,
        proc_read_bytes: 2 << 20,
        proc_rchar: 5 << 20,
    };
    let mut res = ResourceReport::default();
    res.absorb(WorkerResources {
        wall_nanos: 250_000_000,
        ledger: TimeLedger::build(250_000_000, &phases, sample.cpu_nanos),
        logical_bytes: 16_384,
        sample,
    });
    res.physical_rchar = 5 << 20;
    res.physical_read_bytes = 2 << 20;
    res.logical_bytes = 16_384;
    let report = EpochReport {
        resources: Some(res),
        ..Default::default()
    };
    let doc = Json::object()
        .with("epoch", Json::U64(1))
        .with("resources", report.resources_json_value())
        .to_string_pretty();

    // Travel the real registry → HTTP route: the bytes asserted are the
    // body a live scraper receives from GET /resources.
    let registry = Arc::new(SnapshotRegistry::new());
    let cfg = TelemetryConfig::new("127.0.0.1:0")
        .poll_interval(Duration::from_millis(10))
        .history_capacity(0);
    let handle = spawn_server(&cfg, Arc::clone(&registry)).expect("spawn server");
    registry.publish_resources(doc);
    let (code, body) = http_get(handle.addr(), "/resources");
    assert_eq!(code, 200);
    assert!(body.contains("\"read_amplification\": 320.0"), "{body}");
    assert!(body.contains("\"conserved\": true"), "{body}");
    assert!(body.contains("\"physical_attribution\": \"proportional\""), "{body}");
    check_golden("telemetry_resources.json", &body);
    handle.shutdown();
}

#[test]
fn congestion_endpoint_body_is_pinned() {
    let registry = Arc::new(SnapshotRegistry::new());
    push_golden_history(&registry);
    // The same detector the telemetry thread runs, over the registry's
    // real windows: worker 1 completes batches at a tenth of the fleet
    // median and must be convicted as the straggler.
    let detector = CongestionDetector::new(CongestionConfig::default());
    let verdicts = detector.assess(&registry.history_windows(12), &[]);
    let doc = congestion_document(&verdicts);
    assert!(doc.contains("\"state\": \"ok\""), "{doc}");
    assert!(doc.contains("\"state\": \"straggler\""), "{doc}");
    assert!(doc.contains("\"congested\": 1"), "{doc}");
    check_golden("telemetry_congestion.json", &doc);

    // The live route serves the same document shape (empty verdicts
    // until the server's own sampler has run — the fixture server has
    // history off, so the fleet shows zero workers).
    let cfg = TelemetryConfig::new("127.0.0.1:0")
        .poll_interval(Duration::from_millis(10))
        .history_capacity(0);
    let handle = spawn_server(&cfg, Arc::new(SnapshotRegistry::new())).expect("spawn server");
    let (code, body) = http_get(handle.addr(), "/congestion");
    assert_eq!(code, 200);
    assert!(body.contains("\"workers\": 0"), "{body}");
    handle.shutdown();
}
