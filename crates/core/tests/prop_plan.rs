//! Property tests for the read planner: on arbitrary random graphs —
//! skewed and uniform — every [`ReadPlanMode`], cache policy, I/O engine,
//! and replacement setting produces **byte-identical** samples, and the
//! planner's request lists obey the structural invariants (sorted,
//! non-overlapping after dedup, never more requests than the naive plan).

use proptest::prelude::*;

use ringsampler::{CachePolicy, ReadPlanMode, ReadPlanner, RingMode, RingSampler, SamplerConfig};
use ringsampler_graph::edgefile::write_csr;
use ringsampler_graph::{CsrGraph, NodeId, OnDiskGraph, ENTRY_BYTES};
use ringsampler_io::EngineKind;

static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Degree skew of a generated test graph.
#[derive(Debug, Clone, Copy)]
enum Skew {
    /// Every node has roughly the same degree.
    Uniform,
    /// A few hub nodes absorb most edges (power-law-ish), so sampled
    /// entries collide heavily — the planner's best case.
    Skewed,
}

fn build_graph(nodes: u32, edges_per_node: u32, skew: Skew, seed: u64) -> OnDiskGraph {
    let id = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let base =
        std::env::temp_dir().join(format!("rs-prop-plan-{}-{id}", std::process::id()));
    // Simple deterministic LCG so edge structure depends only on (seed).
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut edge_list = Vec::new();
    for v in 0..nodes {
        for _ in 0..edges_per_node {
            let dst = match skew {
                Skew::Uniform => (next() % nodes as u64) as u32,
                // Square a uniform draw: mass concentrates near node 0.
                Skew::Skewed => {
                    let r = (next() % (nodes as u64 * nodes as u64)) as f64;
                    (r.sqrt() as u32).min(nodes - 1)
                }
            };
            edge_list.push((v, dst));
        }
    }
    let csr = CsrGraph::from_edges(nodes as usize, edge_list).unwrap();
    write_csr(&csr, &base).unwrap()
}

fn arb_mode() -> impl Strategy<Value = ReadPlanMode> {
    (0u8..5).prop_map(|i| match i {
        0 => ReadPlanMode::Off,
        1 => ReadPlanMode::Dedup,
        2 => ReadPlanMode::Coalesce { gap: 0 },
        3 => ReadPlanMode::Coalesce { gap: 64 },
        _ => ReadPlanMode::coalesce(),
    })
}

fn arb_skew() -> impl Strategy<Value = Skew> {
    (0u8..2).prop_map(|i| if i == 0 { Skew::Uniform } else { Skew::Skewed })
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|i| i == 1)
}

fn arb_ring_mode() -> impl Strategy<Value = RingMode> {
    (0u8..4).prop_map(|i| RingMode::ALL[i as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential: every plan mode × ring mode × cache × engine ×
    /// replacement yields the exact sample the naive (Off, raw, no-cache,
    /// ring-mode-off) path does — the zero-syscall ladder must be
    /// byte-invisible in sampling output on every rung.
    #[test]
    fn all_modes_agree_with_naive(
        mode in arb_mode(),
        ring_mode in arb_ring_mode(),
        skew in arb_skew(),
        cached in arb_bool(),
        engine_uring in arb_bool(),
        replace in arb_bool(),
        seed in 0u64..1_000,
    ) {
        let nodes = 96u32;
        let graph = build_graph(nodes, 6, skew, seed);
        let graph_b = build_graph(nodes, 6, skew, seed);
        let engine = if engine_uring { EngineKind::Uring } else { EngineKind::Pread };
        let mk = |g, mode, ring_mode, cached: bool, engine| {
            let mut cfg = SamplerConfig::new()
                .fanouts(&[5, 3])
                .ring_entries(8)
                .threads(1)
                .batch_size(nodes as usize)
                .seed(seed ^ 0xABCD)
                .with_replacement(replace)
                .engine(engine)
                .ring_mode(ring_mode)
                .read_plan(mode);
            if cached {
                cfg = cfg.cache(CachePolicy::Page { budget_bytes: 96 * 4160 });
            }
            RingSampler::new(g, cfg).unwrap()
        };
        let seeds: Vec<NodeId> = (0..nodes).collect();
        let naive = mk(graph, ReadPlanMode::Off, RingMode::Off, false, EngineKind::Pread);
        let tuned = mk(graph_b, mode, ring_mode, cached, engine);
        let want = std::sync::Mutex::new(None);
        naive.sample_epoch_with(&seeds, |_, s| {
            *want.lock().unwrap() = Some(s);
        }).unwrap();
        let got = std::sync::Mutex::new(None);
        tuned.sample_epoch_with(&seeds, |_, s| {
            *got.lock().unwrap() = Some(s);
        }).unwrap();
        prop_assert_eq!(
            got.into_inner().unwrap(),
            want.into_inner().unwrap()
        );
    }

    /// Structural invariants of the planner itself on arbitrary entry
    /// streams: requests sorted by offset, non-overlapping after dedup,
    /// and never more numerous than the naive one-per-entry plan.
    #[test]
    fn plans_are_sorted_nonoverlapping_and_no_larger(
        entries in proptest::collection::vec(0u64..10_000, 0..512),
        mode in arb_mode(),
        base in 0u64..1_000,
    ) {
        let mut planner = ReadPlanner::new();
        let stats = planner.plan(&entries, base, ENTRY_BYTES as u32, mode);
        let slices = planner.slices();
        prop_assert!(slices.len() <= entries.len());
        prop_assert_eq!(stats.naive_reads, entries.len() as u64);
        prop_assert_eq!(
            stats.planned_reads as usize, slices.len()
        );
        let mut prev_end = None;
        for s in slices {
            if let Some(pe) = prev_end {
                if mode.is_off() {
                    // Off preserves input order: no ordering guarantee.
                } else {
                    // Sorted and disjoint after dedup/coalescing.
                    prop_assert!(s.offset >= pe, "slices must not overlap");
                }
            }
            prev_end = Some(s.offset + s.len as u64);
        }
        // The scatter map covers every input entry and points inside the
        // planned payload.
        let payload: u64 = slices.iter().map(|s| s.len as u64).sum();
        prop_assert_eq!(planner.scatter().len(), entries.len());
        for &p in planner.scatter() {
            prop_assert!(p + ENTRY_BYTES <= payload);
        }
    }

    /// Dedup on a duplicate-heavy stream must strictly shrink the plan.
    #[test]
    fn dedup_shrinks_duplicate_streams(
        uniques in proptest::collection::vec(0u64..100, 1..32),
        dup_factor in 2usize..6,
    ) {
        let mut entries = Vec::new();
        for _ in 0..dup_factor {
            entries.extend_from_slice(&uniques);
        }
        let mut planner = ReadPlanner::new();
        let stats = planner.plan(&entries, 0, ENTRY_BYTES as u32, ReadPlanMode::Dedup);
        prop_assert!(stats.planned_reads < entries.len() as u64);
        prop_assert!(stats.reads_saved() >= (entries.len() - uniques.len()) as u64);
    }
}
