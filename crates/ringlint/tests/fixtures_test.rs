//! Fixture tests: each rule has a bad snippet (exact diagnostic count and
//! lines asserted) and a good snippet (clean), plus JSON-shape checks and
//! an end-to-end "bad snippet dropped into a hot-path module fails the
//! workspace lint" test.

use ringlint::diag::Report;
use ringlint::rules::{
    lint_source, RULE_ATOMIC, RULE_BLOCKING, RULE_LOAN, RULE_LOCK_SUBMIT, RULE_PANIC, RULE_STALE,
    RULE_SWALLOWED, RULE_SYNC, RULE_UNSAFE,
};

/// A generic non-hot-path module: only unsafe-audit applies.
const ANY: &str = "crates/x/src/lib.rs";
/// A hot-path module: sync-free + panic-free (+ blocking for worker.rs).
const HOT: &str = "crates/core/src/sampling.rs";
/// The ring module: all five rules apply.
const RING: &str = "crates/io/src/ring.rs";
/// The raw-syscall module: io + atomic scopes, not hot-path.
const SYS: &str = "crates/io/src/sys.rs";
/// Any crate source: unsafe-audit + the three dataflow rules, no token
/// scopes — isolates the loan-lifecycle diagnostics from rule cross-talk.
const POOL: &str = "crates/io/src/fixed_pool.rs";

fn lines_for(rule: &str, rel: &str, src: &str) -> Vec<u32> {
    lint_source(rel, src)
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn bad_unsafe_fixture_flags_every_site() {
    let src = include_str!("fixtures/bad_unsafe.rs");
    let out = lint_source(ANY, src);
    assert_eq!(out.violations.len(), 3, "{:#?}", out.violations);
    assert!(out.violations.iter().all(|v| v.rule == RULE_UNSAFE));
    assert_eq!(lines_for(RULE_UNSAFE, ANY, src), vec![2, 5, 9]);
}

#[test]
fn good_unsafe_fixture_is_clean() {
    let out = lint_source(ANY, include_str!("fixtures/good_unsafe.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_sync_fixture_flags_locks_channels_and_shared_atomics() {
    let src = include_str!("fixtures/bad_sync.rs");
    let out = lint_source(HOT, src);
    assert_eq!(out.violations.len(), 4, "{:#?}", out.violations);
    assert!(out.violations.iter().all(|v| v.rule == RULE_SYNC));
    assert_eq!(lines_for(RULE_SYNC, HOT, src), vec![1, 5, 6, 9]);
    // The same snippet outside the hot path is not the lint's business.
    assert!(lint_source(ANY, src).violations.is_empty());
}

#[test]
fn good_sync_fixture_is_clean() {
    let out = lint_source(HOT, include_str!("fixtures/good_sync.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_blocking_fixture_flags_fs_and_seek_calls() {
    let src = include_str!("fixtures/bad_blocking.rs");
    let out = lint_source(SYS, src);
    assert_eq!(out.violations.len(), 3, "{:#?}", out.violations);
    assert!(out.violations.iter().all(|v| v.rule == RULE_BLOCKING));
    assert_eq!(lines_for(RULE_BLOCKING, SYS, src), vec![5, 9, 10]);
    // The synchronous fallback engines are allowlisted by module.
    assert!(lint_source("crates/io/src/mmap.rs", src).violations.is_empty());
}

#[test]
fn good_blocking_fixture_is_clean() {
    let out = lint_source(SYS, include_str!("fixtures/good_blocking.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_panic_fixture_flags_unwrap_expect_panic_indexing() {
    let src = include_str!("fixtures/bad_panic.rs");
    let out = lint_source(HOT, src);
    assert_eq!(out.violations.len(), 4, "{:#?}", out.violations);
    assert!(out.violations.iter().all(|v| v.rule == RULE_PANIC));
    assert_eq!(lines_for(RULE_PANIC, HOT, src), vec![2, 3, 5, 7]);
}

#[test]
fn good_panic_fixture_is_clean() {
    let out = lint_source(HOT, include_str!("fixtures/good_panic.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_atomic_fixture_flags_wrong_orderings() {
    let src = include_str!("fixtures/bad_atomic.rs");
    let out = lint_source(RING, src);
    assert_eq!(out.violations.len(), 3, "{:#?}", out.violations);
    assert!(out.violations.iter().all(|v| v.rule == RULE_ATOMIC));
    assert_eq!(lines_for(RULE_ATOMIC, RING, src), vec![2, 3, 7]);
    // Outside the atomic scope the orderings are someone else's problem.
    assert!(lint_source(ANY, src).violations.is_empty());
}

#[test]
fn good_atomic_fixture_is_clean() {
    let out = lint_source(RING, include_str!("fixtures/good_atomic.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn allow_fixture_suppresses_with_reason_and_flags_without() {
    let out = lint_source(HOT, include_str!("fixtures/allow_exemptions.rs"));
    assert_eq!(out.allowed, 1);
    assert_eq!(out.violations.len(), 1, "{:#?}", out.violations);
    assert_eq!(out.violations[0].rule, RULE_PANIC);
    assert!(out.violations[0].message.contains("requires a reason"));
}

#[test]
fn bad_loan_pool_mutation_flags_exactly_one_use_after_release() {
    let src = include_str!("fixtures/bad_loan_pool.rs");
    let out = lint_source(POOL, src);
    assert_eq!(out.violations.len(), 1, "{:#?}", out.violations);
    assert_eq!(out.violations[0].rule, RULE_LOAN);
    assert_eq!(out.violations[0].line, 16, "{:#?}", out.violations);
    assert!(
        out.violations[0].message.contains("released while"),
        "{:#?}",
        out.violations
    );
}

#[test]
fn good_loan_pool_fixture_is_clean() {
    let out = lint_source(POOL, include_str!("fixtures/good_loan_pool.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_loan_scratch_mutation_flags_exactly_one_drop_before_reap() {
    let src = include_str!("fixtures/bad_loan_scratch.rs");
    let out = lint_source(POOL, src);
    assert_eq!(out.violations.len(), 1, "{:#?}", out.violations);
    assert_eq!(out.violations[0].rule, RULE_LOAN);
    // Reported at the prepare call that opened the loan.
    assert_eq!(out.violations[0].line, 10, "{:#?}", out.violations);
    assert!(
        out.violations[0].message.contains("out of scope"),
        "{:#?}",
        out.violations
    );
}

#[test]
fn good_loan_scratch_fixture_is_clean() {
    let out = lint_source(POOL, include_str!("fixtures/good_loan_scratch.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_pbuf_recycle_mutation_flags_use_after_recycle_and_double_recycle() {
    let src = include_str!("fixtures/bad_pbuf_recycle.rs");
    let out = lint_source(POOL, src);
    assert_eq!(out.violations.len(), 2, "{:#?}", out.violations);
    assert!(out.violations.iter().all(|v| v.rule == RULE_LOAN));
    assert_eq!(lines_for(RULE_LOAN, POOL, src), vec![12, 16]);
    assert!(
        out.violations[0]
            .message
            .contains("after being recycled"),
        "{:#?}",
        out.violations
    );
    assert!(
        out.violations[1].message.contains("recycled to the provided-buffer ring twice"),
        "{:#?}",
        out.violations
    );
}

#[test]
fn good_pbuf_recycle_fixture_is_clean() {
    let out = lint_source(POOL, include_str!("fixtures/good_pbuf_recycle.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_lock_submit_fixture_flags_guard_across_ring_entry() {
    let src = include_str!("fixtures/bad_lock_submit.rs");
    let out = lint_source(POOL, src);
    assert_eq!(out.violations.len(), 1, "{:#?}", out.violations);
    assert_eq!(out.violations[0].rule, RULE_LOCK_SUBMIT);
    assert_eq!(out.violations[0].line, 9, "{:#?}", out.violations);
}

#[test]
fn good_lock_submit_fixture_is_clean() {
    let out = lint_source(POOL, include_str!("fixtures/good_lock_submit.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn bad_swallowed_fixture_flags_let_underscore_and_dot_ok() {
    let src = include_str!("fixtures/bad_swallowed.rs");
    let out = lint_source(POOL, src);
    assert_eq!(out.violations.len(), 2, "{:#?}", out.violations);
    assert!(out.violations.iter().all(|v| v.rule == RULE_SWALLOWED));
    let lines: Vec<u32> = out.violations.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![7, 8]);
}

#[test]
fn good_swallowed_fixture_is_clean() {
    let out = lint_source(POOL, include_str!("fixtures/good_swallowed.rs"));
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}

#[test]
fn stale_allow_fixture_reports_the_original_reason() {
    let out = lint_source(HOT, include_str!("fixtures/stale_allow.rs"));
    assert_eq!(out.allowed, 0);
    assert_eq!(out.violations.len(), 1, "{:#?}", out.violations);
    assert_eq!(out.violations[0].rule, RULE_STALE);
    assert!(
        out.violations[0]
            .message
            .contains("indexing predates the get() rewrite"),
        "{:#?}",
        out.violations
    );
}

#[test]
fn json_report_shape() {
    let outcome = lint_source(HOT, include_str!("fixtures/bad_panic.rs"));
    let mut report = Report {
        files_scanned: 1,
        violations: outcome.violations,
        allowed: outcome.allowed,
    };
    report.finish();
    let json = report.to_json();
    assert!(json.starts_with("{\"schema_version\":2,"));
    assert!(json.contains("\"files_scanned\":1"));
    assert!(json.contains("\"allowed\":0"));
    assert!(json.contains("\"counts\":{"));
    assert!(json.contains("\"panic-free-hot-path\":4"));
    assert!(json.contains("\"unsafe-audit\":0"));
    assert!(json.contains("\"buffer-loan\":0"));
    assert!(json.contains("\"stale-allow\":0"));
    assert!(json.contains(
        "{\"rule\":\"panic-free-hot-path\",\"file\":\"crates/core/src/sampling.rs\",\"line\":2,"
    ));
}

#[test]
fn text_diagnostics_are_file_line_rule() {
    let outcome = lint_source(RING, include_str!("fixtures/bad_atomic.rs"));
    let rendered = outcome.violations[0].render();
    assert!(
        rendered.starts_with("crates/io/src/ring.rs:2 [atomic-ordering]"),
        "{rendered}"
    );
}

/// The acceptance criterion, end to end: dropping a bad fixture into a
/// hot-path module of a workspace makes the full lint report a violation
/// for the correct rule at the right file:line.
#[test]
fn bad_fixture_in_hot_path_module_fails_workspace_lint() {
    let root = std::env::temp_dir().join(format!("ringlint-e2e-{}", std::process::id()));
    let module_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&module_dir).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        module_dir.join("worker.rs"),
        include_str!("fixtures/bad_panic.rs"),
    )
    .expect("module");

    let report = ringlint::lint_workspace(&root).expect("lint");
    std::fs::remove_dir_all(&root).ok();

    assert_eq!(report.files_scanned, 1);
    assert!(!report.violations.is_empty());
    assert!(report
        .violations
        .iter()
        .all(|v| v.file == "crates/core/src/worker.rs" && v.rule == RULE_PANIC));
    assert_eq!(report.violations[0].line, 2);
}

/// The v2 acceptance criterion, end to end: seeding either buffer-loan
/// mutation into a crate source module makes the full workspace lint
/// report exactly one `buffer-loan` violation there.
#[test]
fn seeded_loan_mutations_fail_workspace_lint() {
    for (fixture, expect_line) in [
        (include_str!("fixtures/bad_loan_pool.rs"), 16u32),
        (include_str!("fixtures/bad_loan_scratch.rs"), 10u32),
    ] {
        let root = std::env::temp_dir().join(format!(
            "ringlint-loan-e2e-{}-{expect_line}",
            std::process::id()
        ));
        let module_dir = root.join("crates/io/src");
        std::fs::create_dir_all(&module_dir).expect("mkdir");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
        std::fs::write(module_dir.join("fixed_pool.rs"), fixture).expect("module");

        let report = ringlint::lint_workspace(&root).expect("lint");
        std::fs::remove_dir_all(&root).ok();

        assert_eq!(report.violations.len(), 1, "{}", report.to_text());
        assert_eq!(report.violations[0].rule, RULE_LOAN);
        assert_eq!(report.violations[0].file, "crates/io/src/fixed_pool.rs");
        assert_eq!(report.violations[0].line, expect_line);
    }
}

/// Locks in the current state: the real workspace lints clean, so
/// `cargo run -p ringlint` exits 0.
#[test]
fn real_workspace_is_lint_clean() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = ringlint::find_workspace_root(here).expect("workspace root");
    let report = ringlint::lint_workspace(&root).expect("lint");
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report.to_text()
    );
    assert!(report.files_scanned > 50);
    assert!(report.allowed >= 8, "expected the documented exemptions");
}
