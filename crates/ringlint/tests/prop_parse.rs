//! Property tests for the token-tree parser: `parse` must be *total*
//! (never panic, never drop or duplicate a token) on arbitrary soups of
//! delimiters, strings, comments and punctuation — including unbalanced
//! closers and unclosed groups — and must recover the exact nesting of
//! well-balanced input.

use proptest::collection::vec;
use proptest::prelude::*;
use ringlint::lexer::lex;
use ringlint::parse::{parse, Tree};

/// Source fragments the generator draws from. Deliberately adversarial:
/// bare closers, delimiters buried in string/char literals and comments,
/// multi-char operators the lexer keeps as units.
const PIECES: &[&str] = &[
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "fn",
    "foo",
    "let",
    "x",
    "=",
    ";",
    ",",
    "->",
    "&",
    "mut",
    "\"a string with { ( [ inside\"",
    "'x'",
    "'a",
    "// line comment hiding } ] ) closers",
    "/* block comment hiding { ( [ openers */",
    "1.5e3",
    "0xff",
    "::",
    "..",
    "#",
    "!",
];

fn soup(indices: &[usize]) -> String {
    // Newline separators so line comments cannot swallow later pieces.
    indices
        .iter()
        .map(|&i| PIECES[i % PIECES.len()])
        .collect::<Vec<_>>()
        .join("\n")
}

/// `kinds` picks a delimiter per nesting level; the result is perfectly
/// balanced with one leaf between each opener: `{ x ( x ... ) }`.
fn balanced(kinds: &[usize]) -> String {
    let opens = ["{", "(", "["];
    let closes = ["}", ")", "]"];
    let mut s = String::new();
    for &k in kinds {
        s.push_str(opens[k % 3]);
        s.push_str(" x ");
    }
    for &k in kinds.iter().rev() {
        s.push_str(closes[k % 3]);
        s.push(' ');
    }
    s
}

fn all_closed(trees: &[Tree]) -> bool {
    trees.iter().all(|t| match t {
        Tree::Leaf(_) => true,
        Tree::Group(g) => g.close.is_some() && all_closed(&g.children),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality + round-trip: whatever the input — balanced or not —
    /// flattening the tree yields every token index exactly once, in
    /// source order.
    #[test]
    fn parse_round_trips_arbitrary_token_soup(
        indices in vec(0usize..PIECES.len(), 0..64),
    ) {
        let src = soup(&indices);
        let lx = lex(&src);
        let parsed = parse(&lx.tokens);
        let expect: Vec<usize> = (0..lx.tokens.len()).collect();
        prop_assert_eq!(parsed.flatten(), expect);
    }

    /// Well-balanced input is recovered exactly: nesting depth equals the
    /// construction depth and every group has a matching closer.
    #[test]
    fn parse_recovers_balanced_nesting(
        kinds in vec(0usize..3, 0..24),
    ) {
        let src = balanced(&kinds);
        let lx = lex(&src);
        let parsed = parse(&lx.tokens);
        prop_assert_eq!(parsed.max_depth(), kinds.len());
        prop_assert!(all_closed(&parsed.roots));
        let expect: Vec<usize> = (0..lx.tokens.len()).collect();
        prop_assert_eq!(parsed.flatten(), expect);
    }
}
