pub fn pick(values: &[u64], idx: usize) -> u64 {
    let first = values.first().unwrap();
    let second = values.get(1).expect("len >= 2");
    if idx > values.len() {
        panic!("index out of range");
    }
    *first + *second + values[idx]
}
