pub fn read_tail(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` points into the live CQ mapping.
    unsafe { *p }
}

/// Pokes a value.
///
/// # Safety
/// `p` must be valid for writes.
#[inline]
pub unsafe fn poke(p: *mut u32) {
    *p = 1;
}

// SAFETY: Wrapper owns its allocation exclusively.
unsafe impl Send for Wrapper {}

type RawHook = unsafe fn(u32) -> u32;
