pub fn pick(values: &[u64], idx: usize) -> Option<u64> {
    let first = values.first()?;
    let second = values.get(1)?;
    let third = values.get(idx)?;
    Some(*first + *second + *third)
}

pub fn window(values: &[u64]) -> &[u64] {
    &values[1..]
}
