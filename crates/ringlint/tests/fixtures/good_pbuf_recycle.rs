//! Negative twin of `bad_pbuf_recycle.rs`: each provided-buffer id is
//! copied out while userspace still owns it and recycled exactly once;
//! the reap loop re-`let`s `bid` from the next CQE, which names a fresh
//! id rather than resurrecting the dead one. Lint-clean.

pub fn drain(ring: &mut Ring, out: &mut [u8]) -> Result<(), RingError> {
    for _ in 0..2 {
        let c = ring.wait_completion()?;
        let bid = (c.flags >> IORING_CQE_BUFFER_SHIFT) as u16;
        let _n = ring.buf_ring_copy(bid, ENTRY_BYTES, out);
        ring.buf_ring_recycle(bid);
    }
    Ok(())
}
