//! Fixture: fallible ring operations with their errors silently dropped —
//! one via `let _ =`, one via `.ok()`. A failed submit means the batch's
//! reads never happen; swallowing it turns data loss into a hang. Two
//! `swallowed-ring-error` diagnostics; `good_swallowed.rs` is the twin.

pub fn flush(ring: &mut Ring) {
    let _ = ring.submit();
    ring.wait_completion().ok();
}
