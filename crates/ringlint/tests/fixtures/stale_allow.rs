//! Fixture: a `ringlint: allow` whose code was since fixed — the
//! exemption no longer suppresses anything and must be removed. One
//! `stale-allow` diagnostic carrying the original reason text.

pub fn head_snapshot(values: &[u64]) -> Option<u64> {
    // ringlint: allow(panic-free-hot-path) — indexing predates the get() rewrite
    values.first().copied()
}
