//! Mutation fixture: scratch-buffer read with a seeded drop-before-reap.
//! The function submits the SQE and returns; `page` is freed at the end of
//! scope while the kernel still holds its pointer — a use-after-free the
//! borrow checker cannot see across the syscall boundary. Exactly one
//! `buffer-loan` diagnostic; `good_loan_scratch.rs` is the correct twin.

pub fn fetch_page(ring: &mut Ring, fd: i32, off: u64) -> Result<(), RingError> {
    let mut page = vec![0u8; PAGE_BYTES];
    // SAFETY: fd is open and `page` holds PAGE_BYTES writable bytes.
    unsafe { ring.prepare_read(fd, page.as_mut_ptr(), PAGE_BYTES as u32, off, 1)? };
    ring.submit()?;
    Ok(())
}
