use std::sync::Arc;

pub struct WorkerState {
    graph: Arc<GraphHandle>,
    scratch: Vec<u64>,
    seed: u64,
}

pub fn advance(state: &mut WorkerState) {
    state.seed = state.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
}
