//! Mutation fixture: provided-buffer ids misused after recycling. `bid`
//! is copied from *after* it was recycled to the kernel's buffer ring
//! (the kernel may already be refilling it for another read), and
//! `other` is recycled twice (handing one buffer to two in-flight
//! reads). One `buffer-loan` diagnostic each; `good_pbuf_recycle.rs` is
//! the correct twin.

pub fn drain(ring: &mut Ring, out: &mut [u8]) -> Result<(), RingError> {
    let c = ring.wait_completion()?;
    let bid = (c.flags >> IORING_CQE_BUFFER_SHIFT) as u16;
    ring.buf_ring_recycle(bid);
    let _n = ring.buf_ring_copy(bid, ENTRY_BYTES, out);
    let d = ring.wait_completion()?;
    let other = (d.flags >> IORING_CQE_BUFFER_SHIFT) as u16;
    ring.buf_ring_recycle(other);
    ring.buf_ring_recycle(other);
    Ok(())
}
