pub fn read_tail(p: *const u32) -> u32 {
    unsafe { *p }
}

pub unsafe fn poke(p: *mut u32) {
    *p = 1;
}

unsafe impl Send for Wrapper {}
