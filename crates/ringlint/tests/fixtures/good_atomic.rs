pub fn reap(head: &AtomicU32, tail: &AtomicU32) -> bool {
    let t = tail.load(Ordering::Acquire);
    let h = head.load(Ordering::Acquire);
    if h == t {
        return false;
    }
    head.store(h.wrapping_add(1), Ordering::Release);
    true
}

pub fn compare(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b).then(std::cmp::Ordering::Equal)
}
