//! Mutation fixture: FixedBufPool-style group read with a seeded
//! use-after-release. The slot is returned to the free list BEFORE the
//! completion is reaped, so the next `acquire` can hand the same buffer to
//! another group while the kernel is still writing into this one.
//! Exactly one `buffer-loan` diagnostic; `good_loan_pool.rs` is the
//! correct twin.

impl FixedFetch {
    pub fn read_group(&mut self, ring: &mut Ring, fd: i32, len: u32) -> Result<(), RingError> {
        let grant = self.pool.acquire(len as usize);
        if let Some((slot, base)) = grant {
            // SAFETY: `base` points into a pool buffer that stays pinned
            // and unaliased until the group's completion is reaped.
            unsafe { ring.prepare_read_fixed_buf(fd, true, base, len, 0, slot, 7)? };
            ring.submit()?;
            self.pool.release(slot);
            ring.wait_group(7)?;
        }
        Ok(())
    }
}
