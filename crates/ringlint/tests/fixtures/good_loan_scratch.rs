//! Negative twin of `bad_loan_scratch.rs`: the completion is reaped with
//! `wait_group` before `page` goes out of scope, so the buffer outlives
//! the kernel's use of it. Lint-clean.

pub fn fetch_page(ring: &mut Ring, fd: i32, off: u64) -> Result<(), RingError> {
    let mut page = vec![0u8; PAGE_BYTES];
    // SAFETY: fd is open and `page` holds PAGE_BYTES writable bytes; the
    // buffer stays alive until `wait_group` reaps the completion below.
    unsafe { ring.prepare_read(fd, page.as_mut_ptr(), PAGE_BYTES as u32, off, 1)? };
    ring.submit()?;
    ring.wait_group(1)?;
    Ok(())
}
