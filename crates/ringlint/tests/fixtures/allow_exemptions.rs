pub fn head_snapshot(values: &[u64]) -> u64 {
    // ringlint: allow(panic-free-hot-path) — caller checked non-empty
    values[0]
}

pub fn tail_snapshot(values: &[u64]) -> u64 {
    // ringlint: allow(panic-free-hot-path)
    values[1]
}
