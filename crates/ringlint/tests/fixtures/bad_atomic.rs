pub fn reap(head: &AtomicU32, tail: &AtomicU32) -> bool {
    let h = head.load(Ordering::Relaxed);
    let t = tail.load(Ordering::SeqCst);
    if h == t {
        return false;
    }
    head.store(h.wrapping_add(1), Ordering::Relaxed);
    true
}
