pub fn submit(ring: &mut Ring, offset: u64, len: u32) -> Result<(), SubmitError> {
    ring.push_read(offset, len)
}

pub fn reap(ring: &mut Ring) -> Option<Completion> {
    ring.peek_completion()
}
