//! Negative twin of `bad_lock_submit.rs`: the guard is dropped (or
//! confined to an inner scope) before the ring is entered. Lint-clean.

pub fn submit_with_stats(ring: &mut Ring, stats: &Mutex<Stats>) -> Result<(), RingError> {
    {
        let held = stats.lock().unwrap();
        held.note_submit();
    }
    ring.submit_and_wait(1)?;
    Ok(())
}
