//! Fixture: a stats mutex guard held across ring entry. If the submit
//! blocks in the kernel, every other thread contending for the stats lock
//! stalls behind a syscall. One `lock-across-submit` diagnostic;
//! `good_lock_submit.rs` is the correct twin.

pub fn submit_with_stats(ring: &mut Ring, stats: &Mutex<Stats>) -> Result<(), RingError> {
    let held = stats.lock().unwrap();
    held.note_submit();
    ring.submit_and_wait(1)?;
    drop(held);
    Ok(())
}
