use std::fs;
use std::io::{Read, Seek, SeekFrom};

pub fn load(path: &str) -> Vec<u8> {
    fs::read(path).unwrap_or_default()
}

pub fn slurp(file: &mut std::fs::File, buf: &mut Vec<u8>) -> std::io::Result<u64> {
    let n = file.seek(SeekFrom::Start(0))?;
    file.read_to_end(buf)?;
    Ok(n)
}
