use std::sync::{Arc, Mutex};
use std::sync::atomic::AtomicU64;

pub struct SharedState {
    counter: Arc<AtomicU64>,
    guard: Mutex<Vec<u64>>,
}

pub fn drain(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {
    rx.try_recv().ok()
}
