//! Negative twin of `bad_swallowed.rs`: every fallible ring operation is
//! propagated with `?` or explicitly branched on. Lint-clean.

pub fn flush(ring: &mut Ring) -> Result<(), RingError> {
    ring.submit()?;
    if ring.wait_completion().is_err() {
        ring.drain_completions()?;
    }
    Ok(())
}
