//! Negative twin of `bad_loan_pool.rs`: the slot goes back to the free
//! list only after `wait_group` reaps the completion, so the buffer is
//! never recycled while the kernel holds its pointer. Lint-clean.

impl FixedFetch {
    pub fn read_group(&mut self, ring: &mut Ring, fd: i32, len: u32) -> Result<(), RingError> {
        let grant = self.pool.acquire(len as usize);
        if let Some((slot, base)) = grant {
            // SAFETY: `base` points into a pool buffer that stays pinned
            // and unaliased until the group's completion is reaped.
            unsafe { ring.prepare_read_fixed_buf(fd, true, base, len, 0, slot, 7)? };
            ring.submit()?;
            ring.wait_group(7)?;
            self.pool.release(slot);
        }
        Ok(())
    }
}
