//! ringlint CLI.
//!
//! ```text
//! cargo run -p ringlint                # lint the workspace, text output
//! cargo run -p ringlint -- --json      # machine-readable report
//! cargo run -p ringlint -- --root DIR  # explicit workspace root
//! cargo run -p ringlint -- FILE..      # lint specific files (relative to root)
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => {
                    let p = PathBuf::from(p);
                    if !p.is_dir() {
                        eprintln!("ringlint: --root `{}` is not a directory", p.display());
                        return ExitCode::from(2);
                    }
                    root_arg = Some(p);
                }
                None => {
                    eprintln!("ringlint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ringlint — RingSampler workspace invariant checker\n\n\
                     USAGE: ringlint [--json] [--root DIR] [FILE..]\n\n\
                     Rules: {}",
                    ringlint::rules::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ringlint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => files.push(other.replace('\\', "/")),
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| ringlint::find_workspace_root(&d))
            .or_else(|| {
                // Under `cargo run` the manifest dir is crates/ringlint.
                std::env::var_os("CARGO_MANIFEST_DIR")
                    .map(PathBuf::from)
                    .and_then(|d| ringlint::find_workspace_root(&d))
            })
    }) {
        Some(r) => r,
        None => {
            eprintln!("ringlint: could not locate a workspace root (use --root)");
            return ExitCode::from(2);
        }
    };

    let report = if files.is_empty() {
        ringlint::lint_workspace(&root)
    } else {
        ringlint::lint_files(&root, &files)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ringlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
