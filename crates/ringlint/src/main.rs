//! ringlint CLI.
//!
//! ```text
//! cargo run -p ringlint                         # lint the workspace, text output
//! cargo run -p ringlint -- --json               # machine-readable report
//! cargo run -p ringlint -- --root DIR           # explicit workspace root
//! cargo run -p ringlint -- FILE..               # lint specific files (relative to root)
//! cargo run -p ringlint -- --baseline FILE      # fail only on NEW violations
//! cargo run -p ringlint -- --update-baseline FILE  # snapshot current findings
//! ```
//!
//! With `--baseline`, violations recorded in FILE are grandfathered
//! (matched by rule/file/message, line-insensitive) and only new findings
//! fail the run; `stale-allow` findings are never grandfathered. In `--json`
//! mode the full report still goes to stdout and the baseline verdict to
//! stderr, so the exit code is the CI contract.
//!
//! Exit codes: 0 clean, 1 violations found (new ones only under
//! `--baseline`), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => {
                    let p = PathBuf::from(p);
                    if !p.is_dir() {
                        eprintln!("ringlint: --root `{}` is not a directory", p.display());
                        return ExitCode::from(2);
                    }
                    root_arg = Some(p);
                }
                None => {
                    eprintln!("ringlint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ringlint: --baseline requires a file argument");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => match args.next() {
                Some(p) => update_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ringlint: --update-baseline requires a file argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ringlint — RingSampler workspace invariant checker\n\n\
                     USAGE: ringlint [--json] [--root DIR] [--baseline FILE]\n\
                     \x20               [--update-baseline FILE] [FILE..]\n\n\
                     Rules: {}\n\
                     Hygiene: stale-allow (unused `ringlint: allow` comments)",
                    ringlint::rules::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ringlint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => files.push(other.replace('\\', "/")),
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| ringlint::find_workspace_root(&d))
            .or_else(|| {
                // Under `cargo run` the manifest dir is crates/ringlint.
                std::env::var_os("CARGO_MANIFEST_DIR")
                    .map(PathBuf::from)
                    .and_then(|d| ringlint::find_workspace_root(&d))
            })
    }) {
        Some(r) => r,
        None => {
            eprintln!("ringlint: could not locate a workspace root (use --root)");
            return ExitCode::from(2);
        }
    };

    let report = if files.is_empty() {
        ringlint::lint_workspace(&root)
    } else {
        ringlint::lint_files(&root, &files)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ringlint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = update_baseline {
        let text = ringlint::baseline::render(&report);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("ringlint: writing baseline `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
        let n = report
            .violations
            .iter()
            .filter(|v| v.rule != ringlint::rules::RULE_STALE)
            .count();
        eprintln!("ringlint: wrote {} baselined violation(s) to {}", n, path.display());
        // Snapshotting succeeds regardless of how dirty the tree is.
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ringlint: reading baseline `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let entries = match ringlint::baseline::parse(&text) {
            Ok(es) => es,
            Err(e) => {
                eprintln!("ringlint: {e}");
                return ExitCode::from(2);
            }
        };
        let fresh = ringlint::baseline::new_violations(&report, &entries);
        for v in &fresh {
            eprintln!("new: {}", v.render());
        }
        eprintln!(
            "ringlint: {} new violation(s) vs baseline ({} baselined)",
            fresh.len(),
            entries.len()
        );
        return if fresh.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
