//! Token-tree parser: the statement-level structure the dataflow rules
//! need, built on the flat token list from [`crate::lexer`].
//!
//! The lexer already guarantees that delimiters inside strings, chars and
//! comments never reach us, so nesting here is purely structural: every
//! `{`/`(`/`[` opens a [`Group`] and the matching closer ends it. The
//! parser is total — it never panics and never drops a token. Malformed
//! input degrades gracefully: a closer with no matching opener becomes a
//! plain leaf, and a group left open at end of file closes there (its
//! `close` index is `None`). [`Parsed::flatten`] returns the tokens in
//! original order, which the property tests use to prove round-tripping.
//!
//! On top of the tree, [`functions`] finds every `fn name(..) { .. }` in
//! the file (free functions, methods in `impl` blocks, nested fns) so the
//! dataflow pass can analyze one function body at a time.

use crate::lexer::Tok;

/// Which delimiter pair a [`Group`] was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `{ .. }`
    Brace,
    /// `( .. )`
    Paren,
    /// `[ .. ]`
    Bracket,
}

impl Delim {
    fn of(text: &str) -> Option<Delim> {
        match text {
            "{" => Some(Delim::Brace),
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            _ => None,
        }
    }

    fn closer(self) -> &'static str {
        match self {
            Delim::Brace => "}",
            Delim::Paren => ")",
            Delim::Bracket => "]",
        }
    }
}

/// A delimited region of the token stream and everything nested inside it.
#[derive(Debug)]
pub struct Group {
    /// Delimiter kind.
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter, or `None` if the file ended
    /// with this group still open.
    pub close: Option<usize>,
    /// Nested trees between the delimiters, in source order.
    pub children: Vec<Tree>,
}

/// One node of the token tree: a single token or a delimited group.
#[derive(Debug)]
pub enum Tree {
    /// A non-delimiter token, by index into the lexed token list.
    Leaf(usize),
    /// A delimited group.
    Group(Group),
}

/// The token tree of one file.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Top-level trees in source order.
    pub roots: Vec<Tree>,
}

impl Parsed {
    /// Reconstructs the original token-index sequence from the tree.
    /// `flatten()` over `parse(toks)` is always `0..toks.len()`.
    pub fn flatten(&self) -> Vec<usize> {
        let mut out = Vec::new();
        flatten_into(&self.roots, &mut out);
        out
    }

    /// Maximum group nesting depth (0 for a flat file).
    pub fn max_depth(&self) -> usize {
        fn depth(trees: &[Tree]) -> usize {
            trees
                .iter()
                .map(|t| match t {
                    Tree::Leaf(_) => 0,
                    Tree::Group(g) => 1 + depth(&g.children),
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.roots)
    }
}

fn flatten_into(trees: &[Tree], out: &mut Vec<usize>) {
    for t in trees {
        match t {
            Tree::Leaf(i) => out.push(*i),
            Tree::Group(g) => {
                out.push(g.open);
                flatten_into(&g.children, out);
                if let Some(c) = g.close {
                    out.push(c);
                }
            }
        }
    }
}

/// Parses the flat token list into a token tree. Total: every token
/// appears in the output exactly once, in order, for any input.
pub fn parse(toks: &[Tok]) -> Parsed {
    // Stack of open groups; the top collects children until its closer.
    let mut stack: Vec<Group> = Vec::new();
    let mut roots: Vec<Tree> = Vec::new();

    let push = |stack: &mut Vec<Group>, roots: &mut Vec<Tree>, tree: Tree| {
        match stack.last_mut() {
            Some(g) => g.children.push(tree),
            None => roots.push(tree),
        }
    };

    for (i, t) in toks.iter().enumerate() {
        if let Some(delim) = Delim::of(&t.text) {
            stack.push(Group {
                delim,
                open: i,
                close: None,
                children: Vec::new(),
            });
        } else if matches!(t.text.as_str(), "}" | ")" | "]") {
            // Close the innermost group with a matching opener. Mismatched
            // closers first pop any inner groups left open (closing them at
            // the position just before the closer), mirroring how rustc
            // recovers; a closer with no opener anywhere becomes a leaf.
            let has_match = stack.iter().any(|g| g.delim.closer() == t.text);
            if has_match {
                // `has_match` guarantees this terminates via the break.
                while let Some(mut g) = stack.pop() {
                    if g.delim.closer() == t.text {
                        g.close = Some(i);
                        push(&mut stack, &mut roots, Tree::Group(g));
                        break;
                    }
                    // Inner group never closed: ends before this closer.
                    push(&mut stack, &mut roots, Tree::Group(g));
                }
            } else {
                push(&mut stack, &mut roots, Tree::Leaf(i));
            }
        } else {
            push(&mut stack, &mut roots, Tree::Leaf(i));
        }
    }
    // Groups still open at EOF close there.
    while let Some(g) = stack.pop() {
        push(&mut stack, &mut roots, Tree::Group(g));
    }
    Parsed { roots }
}

/// One `fn` item found in the tree: its name and body group.
#[derive(Debug)]
pub struct FnItem<'a> {
    /// Function name (`""` for malformed items).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The argument list group.
    pub args: &'a Group,
    /// The body group (`{ .. }`).
    pub body: &'a Group,
}

/// Finds every function with a body, at any nesting depth (free fns,
/// methods inside `impl`/`mod` braces, nested fns). Trait-method
/// *declarations* (ending in `;`) have no body and are skipped.
pub fn functions<'a>(parsed: &'a Parsed, toks: &[Tok]) -> Vec<FnItem<'a>> {
    let mut out = Vec::new();
    collect_fns(&parsed.roots, toks, &mut out);
    out
}

fn collect_fns<'a>(trees: &'a [Tree], toks: &[Tok], out: &mut Vec<FnItem<'a>>) {
    let mut i = 0usize;
    while i < trees.len() {
        if let Tree::Leaf(ti) = trees[i] {
            if toks[ti].text == "fn" {
                if let Some((item, consumed)) = match_fn(&trees[i..], toks) {
                    // Recurse into the body for nested fns before pushing,
                    // so items come out in source order of their `fn`.
                    out.push(item);
                    let body_idx = i + consumed - 1;
                    if let Some(Tree::Group(g)) = trees.get(body_idx) {
                        collect_fns(&g.children, toks, out);
                    }
                    i += consumed;
                    continue;
                }
            }
        }
        if let Tree::Group(g) = &trees[i] {
            collect_fns(&g.children, toks, out);
        }
        i += 1;
    }
}

/// Tries to match `fn NAME .. (args) .. { body }` starting at `trees[0]`
/// (the `fn` leaf). Returns the item and how many sibling trees it spans
/// (through the body group). Gives up at `;` (bodyless declaration), at
/// another `fn`, or after a bounded scan.
fn match_fn<'a>(trees: &'a [Tree], toks: &[Tok]) -> Option<(FnItem<'a>, usize)> {
    let fn_tok = match trees.first() {
        Some(Tree::Leaf(i)) => *i,
        _ => return None,
    };
    let name = match trees.get(1) {
        Some(Tree::Leaf(i)) if is_ident(&toks[*i].text) => toks[*i].text.clone(),
        _ => return None, // `fn` as a type (`fn(i32)`) or malformed
    };
    // Scan forward for the arg list, skipping generics tokens (`<`, `>`,
    // lifetimes, bounds — all leaves, since angle brackets don't group).
    let mut j = 2usize;
    let mut args: Option<(&Group, usize)> = None;
    while j < trees.len() && j < 64 {
        match &trees[j] {
            Tree::Leaf(i) => {
                let t = toks[*i].text.as_str();
                if t == ";" || t == "fn" {
                    return None;
                }
            }
            Tree::Group(g) if g.delim == Delim::Paren => {
                args = Some((g, j));
                break;
            }
            // A brace before the args (e.g. a const-generic default
            // `{ N }`) — bail rather than misattach.
            Tree::Group(_) => return None,
        }
        j += 1;
    }
    let (args, args_at) = args?;
    // After the args: optional `-> Type` and where-clause leaves, then the
    // body brace. `;` means declaration only.
    let mut k = args_at + 1;
    while k < trees.len() && k < args_at + 64 {
        match &trees[k] {
            Tree::Leaf(i) => {
                let t = toks[*i].text.as_str();
                if t == ";" || t == "fn" {
                    return None;
                }
            }
            Tree::Group(g) if g.delim == Delim::Brace => {
                return Some((
                    FnItem {
                        name,
                        line: toks[fn_tok].line,
                        args,
                        body: g,
                    },
                    k + 1,
                ));
            }
            // Return types and where clauses can contain parens/brackets
            // (e.g. `-> Result<(), E>` parses `()` as a group) — skip them.
            Tree::Group(_) => {}
        }
        k += 1;
    }
    None
}

fn is_ident(text: &str) -> bool {
    text.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Parsed, Vec<Tok>) {
        let lx = lex(src);
        let p = parse(&lx.tokens);
        (p, lx.tokens)
    }

    #[test]
    fn flatten_round_trips_simple() {
        let (p, toks) = parse_src("fn main() { let x = (1 + [2, 3][0]); }");
        assert_eq!(p.flatten(), (0..toks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn nesting_depth_counts_groups() {
        let (p, _) = parse_src("fn f() { if x { g(&[1]); } }");
        assert!(p.max_depth() >= 4); // body { if { ( [ … ] ) } }
    }

    #[test]
    fn unbalanced_closer_is_leaf_and_round_trips() {
        let (p, toks) = parse_src(") } fn f() {}");
        assert_eq!(p.flatten(), (0..toks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn unclosed_group_closes_at_eof_and_round_trips() {
        let (p, toks) = parse_src("fn f() { let x = (1 + 2;");
        assert_eq!(p.flatten(), (0..toks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn mismatched_nesting_round_trips() {
        let (p, toks) = parse_src("{ ( } ) [ { ] }");
        assert_eq!(p.flatten(), (0..toks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn finds_free_fn_and_method() {
        let src = "fn top(a: u32) -> u32 { a }\nimpl S { pub fn meth(&mut self) { body(); } }";
        let (p, toks) = parse_src(src);
        let fns = functions(&p, &toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["top", "meth"]);
        assert_eq!(fns[0].line, 1);
        assert_eq!(fns[1].line, 2);
    }

    #[test]
    fn finds_nested_fn_and_generic_fn() {
        let src = "fn outer<T: Into<u64>>(x: T) -> Result<(), E> where T: Copy {\n    fn inner() {}\n    inner()\n}";
        let (p, toks) = parse_src(src);
        let fns = functions(&p, &toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn trait_declaration_without_body_skipped() {
        let src = "trait T { fn decl(&self) -> u32; fn with_body(&self) -> u32 { 1 } }";
        let (p, toks) = parse_src(src);
        let fns = functions(&p, &toks);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with_body");
    }

    #[test]
    fn fn_pointer_type_not_a_function() {
        let src = "type F = fn(u32) -> u32;\nstatic G: fn() = noop;";
        let (p, toks) = parse_src(src);
        assert!(functions(&p, &toks).is_empty());
    }

    #[test]
    fn body_group_contains_statements() {
        let (p, toks) = parse_src("fn f() { a(); b(); }");
        let fns = functions(&p, &toks);
        assert_eq!(fns.len(), 1);
        // a ( ) ; b ( ) ; → 2 leaves + 2 paren groups + 2 semicolon leaves
        assert_eq!(fns[0].body.children.len(), 6);
    }
}
