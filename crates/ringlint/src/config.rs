//! Rule scoping: which rules apply to which workspace files.
//!
//! Scopes mirror the paper's architecture (see DESIGN.md "Enforced
//! invariants"): the *hot path* is every module a sampler worker executes
//! per batch — neighbor sampling, the worker loop, the epoch driver and the
//! io_uring submission/completion machinery. The *io path* is the subset
//! that sits between a submitted SQE and a reaped CQE, where a blocking
//! syscall would stall the whole pipeline (paper Fig. 3b). The *atomic
//! path* is the two modules that speak the kernel's SQ/CQ memory-ordering
//! protocol.

use crate::rules::{
    RULE_ATOMIC, RULE_BLOCKING, RULE_LOAN, RULE_LOCK_SUBMIT, RULE_PANIC, RULE_RESOURCE,
    RULE_SWALLOWED, RULE_SYNC, RULE_UNSAFE,
};

/// Modules executed per-batch by sampler workers (paper §3.1: the
/// sync-free, panic-free region).
pub const HOT_PATH: &[&str] = &[
    "crates/core/src/worker.rs",
    "crates/core/src/sampling.rs",
    "crates/core/src/engine.rs",
    // The read planner runs per layer inside every worker's fetch; its
    // sort/merge/scatter passes must never panic or synchronize.
    "crates/core/src/plan.rs",
    "crates/io/src/ring.rs",
    "crates/io/src/engine.rs",
    // Observability primitives workers call per batch/IO group: recording
    // must stay allocation-free, lock-free and panic-free.
    "crates/ringstat/src/hist.rs",
    "crates/ringstat/src/span.rs",
    // The seqlock publish runs once per batch on every worker; aside from
    // its two audited version-counter accesses it must stay sync-free.
    "crates/ringstat/src/snapshot.rs",
    // The flight recorder records an event per pipeline stage on every
    // worker; its store-only cursors must never grow a lock or RMW.
    "crates/ringstat/src/events.rs",
    // The history ring's writer side runs on the telemetry poll tick but
    // shares slots with concurrent dashboard readers; like the flight
    // recorder it must stay lock-free and panic-free.
    "crates/ringstat/src/history.rs",
    // ringprof's samplers: `thread_cpu_nanos` rides every batch, and the
    // epoch-boundary `ResourceSample::now` shares the file — so the
    // whole module is held to hot-path discipline, with the
    // resource-discipline rule auditing which reads run where.
    "crates/ringstat/src/resources.rs",
];

/// Modules on the io_uring submission/completion path. Blocking reads here
/// would serialize the async pipeline (paper Fig. 3b). `mmap.rs` and
/// `ondemand.rs` are deliberately absent: they are the synchronous fallback
/// engines and oracle readers.
pub const IO_PATH: &[&str] = &[
    "crates/io/src/ring.rs",
    "crates/io/src/sys.rs",
    "crates/io/src/engine.rs",
    "crates/core/src/worker.rs",
    // Plans are built between a layer's sampling and its SQE submission;
    // a blocking call here stalls the pipeline exactly like worker code.
    "crates/core/src/plan.rs",
];

/// Modules implementing the kernel SQ/CQ shared-memory protocol, where
/// every atomic access must follow the acquire/release discipline.
pub const ATOMIC_PATH: &[&str] = &[
    "crates/io/src/ring.rs",
    "crates/io/src/sys.rs",
    // The snapshot seqlock is a single-writer acquire/release protocol;
    // its two relaxed accesses carry reasoned `ringlint: allow` comments.
    "crates/ringstat/src/snapshot.rs",
    // The event ring's cursors follow the same single-writer discipline
    // (load-Acquire / store-Release only, no RMW, no relaxed accesses).
    "crates/ringstat/src/events.rs",
    // The history ring's head cursor copies the event ring's store-only
    // idiom; its seqlock slots are audited through `snapshot.rs`.
    "crates/ringstat/src/history.rs",
];

/// Returns true if `rel` (forward-slash, workspace-relative) ends with any
/// of the given module paths.
fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| rel == *s || rel.ends_with(&format!("/{s}")))
}

/// The rules that apply to a workspace-relative path. `unsafe-audit`
/// applies everywhere; the token rules only in their scoped module lists;
/// the dataflow rules (buffer-loan, lock-across-submit,
/// swallowed-ring-error) on every crate source file — they are
/// pattern-gated on ring-operation names, so they are silent in modules
/// that never touch the ring. Test code (`tests/` roots) and vendored
/// sources are excluded from the dataflow rules: tests hold env locks
/// across ring calls by design, and vendor code is not ours to fix.
pub fn rules_for(rel: &str) -> Vec<&'static str> {
    let mut rules = vec![RULE_UNSAFE];
    if in_scope(rel, HOT_PATH) {
        rules.push(RULE_SYNC);
        rules.push(RULE_PANIC);
        rules.push(RULE_RESOURCE);
    }
    if in_scope(rel, IO_PATH) {
        rules.push(RULE_BLOCKING);
    }
    if in_scope(rel, ATOMIC_PATH) {
        rules.push(RULE_ATOMIC);
    }
    if rel.starts_with("crates/") && rel.contains("/src/") {
        rules.push(RULE_LOAN);
        rules.push(RULE_LOCK_SUBMIT);
        rules.push(RULE_SWALLOWED);
    }
    rules
}

/// Whether a workspace-relative path should be scanned at all. Lint
/// fixtures are intentionally-bad snippets; `target/` is build output.
pub fn is_scanned(rel: &str) -> bool {
    let skip_components = ["target", "fixtures"];
    !rel.split('/').any(|c| skip_components.contains(&c)) && rel.ends_with(".rs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_path_gets_all_applicable_rules() {
        let rules = rules_for("crates/io/src/ring.rs");
        assert!(rules.contains(&RULE_UNSAFE));
        assert!(rules.contains(&RULE_SYNC));
        assert!(rules.contains(&RULE_PANIC));
        assert!(rules.contains(&RULE_BLOCKING));
        assert!(rules.contains(&RULE_ATOMIC));
    }

    #[test]
    fn fallback_engines_not_in_io_scope() {
        for rel in ["crates/io/src/mmap.rs", "crates/io/src/ondemand.rs"] {
            let rules = rules_for(rel);
            assert!(!rules.contains(&RULE_BLOCKING), "{rel}");
            assert!(!rules.contains(&RULE_SYNC), "{rel}");
            // The dataflow rules still watch any ring calls they make.
            assert!(rules.contains(&RULE_LOAN), "{rel}");
        }
    }

    #[test]
    fn dataflow_rules_cover_crate_sources_only() {
        for rel in [
            "crates/io/src/ring.rs",
            "crates/core/src/worker.rs",
            "crates/ringstat/src/json.rs",
        ] {
            let rules = rules_for(rel);
            assert!(rules.contains(&RULE_LOAN), "{rel}");
            assert!(rules.contains(&RULE_LOCK_SUBMIT), "{rel}");
            assert!(rules.contains(&RULE_SWALLOWED), "{rel}");
        }
        for rel in [
            "tests/e2e.rs",
            "crates/ringstat/tests/prop_hist.rs",
            "vendor/proptest/src/lib.rs",
        ] {
            let rules = rules_for(rel);
            assert!(!rules.contains(&RULE_LOAN), "{rel}");
            assert!(!rules.contains(&RULE_LOCK_SUBMIT), "{rel}");
            assert!(!rules.contains(&RULE_SWALLOWED), "{rel}");
        }
    }

    #[test]
    fn sampling_is_hot_but_not_io() {
        let rules = rules_for("crates/core/src/sampling.rs");
        assert!(rules.contains(&RULE_PANIC));
        assert!(!rules.contains(&RULE_BLOCKING));
        assert!(!rules.contains(&RULE_ATOMIC));
    }

    #[test]
    fn read_planner_is_hot_and_io_but_not_atomic() {
        let rules = rules_for("crates/core/src/plan.rs");
        assert!(rules.contains(&RULE_SYNC));
        assert!(rules.contains(&RULE_PANIC));
        assert!(rules.contains(&RULE_BLOCKING));
        assert!(!rules.contains(&RULE_ATOMIC));
    }

    #[test]
    fn ringstat_recorders_are_hot_but_not_io() {
        for rel in ["crates/ringstat/src/hist.rs", "crates/ringstat/src/span.rs"] {
            let rules = rules_for(rel);
            assert!(rules.contains(&RULE_SYNC), "{rel}");
            assert!(rules.contains(&RULE_PANIC), "{rel}");
            assert!(!rules.contains(&RULE_BLOCKING), "{rel}");
        }
        // Export-side modules run at epoch join, not in the hot loop.
        assert!(!rules_for("crates/ringstat/src/json.rs").contains(&RULE_SYNC));
        // The telemetry server runs on its own thread, outside hot scope.
        assert!(!rules_for("crates/ringstat/src/http.rs").contains(&RULE_SYNC));
    }

    #[test]
    fn snapshot_seqlock_is_hot_and_atomic_but_not_io() {
        let rules = rules_for("crates/ringstat/src/snapshot.rs");
        assert!(rules.contains(&RULE_SYNC));
        assert!(rules.contains(&RULE_PANIC));
        assert!(rules.contains(&RULE_ATOMIC));
        assert!(!rules.contains(&RULE_BLOCKING));
    }

    #[test]
    fn event_ring_is_hot_and_atomic_but_not_io() {
        let rules = rules_for("crates/ringstat/src/events.rs");
        assert!(rules.contains(&RULE_SYNC));
        assert!(rules.contains(&RULE_PANIC));
        assert!(rules.contains(&RULE_ATOMIC));
        assert!(!rules.contains(&RULE_BLOCKING));
    }

    #[test]
    fn history_ring_is_hot_and_atomic_but_not_io() {
        let rules = rules_for("crates/ringstat/src/history.rs");
        assert!(rules.contains(&RULE_SYNC));
        assert!(rules.contains(&RULE_PANIC));
        assert!(rules.contains(&RULE_ATOMIC));
        assert!(!rules.contains(&RULE_BLOCKING));
    }

    #[test]
    fn resources_module_is_hot_with_resource_discipline() {
        let rules = rules_for("crates/ringstat/src/resources.rs");
        assert!(rules.contains(&RULE_SYNC));
        assert!(rules.contains(&RULE_PANIC));
        assert!(rules.contains(&RULE_RESOURCE));
        assert!(!rules.contains(&RULE_BLOCKING));
        assert!(!rules.contains(&RULE_ATOMIC));
        // Cold modules sample freely: the rule is hot-path-scoped.
        assert!(!rules_for("crates/ringstat/src/json.rs").contains(&RULE_RESOURCE));
        assert!(!rules_for("crates/bench/src/lib.rs").contains(&RULE_RESOURCE));
    }

    #[test]
    fn fixtures_and_target_excluded() {
        assert!(!is_scanned("crates/ringlint/tests/fixtures/bad_sync.rs"));
        assert!(!is_scanned("target/debug/build/foo.rs"));
        assert!(is_scanned("crates/core/src/worker.rs"));
        assert!(!is_scanned("README.md"));
    }
}
