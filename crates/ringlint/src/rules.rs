//! The nine invariant rules, run over the token stream of one file.
//!
//! Six rules are token-level detectors; three (`buffer-loan`,
//! `lock-across-submit`, `swallowed-ring-error`) run on the statement-level
//! dataflow analysis in [`crate::dataflow`]. Each detector works on the
//! lexed tokens (never raw text), so patterns inside string literals and
//! comments can't trigger false positives. `#[cfg(test)] mod .. { .. }`
//! regions are excluded from every rule, and any remaining finding can be
//! exempted at the site with `// ringlint: allow(<rule>) — <reason>`; an
//! allow without a reason is itself a violation, and an allow that no
//! longer suppresses anything is reported as `stale-allow` so exemptions
//! cannot rot silently.

use crate::config;
use crate::diag::Violation;
use crate::lexer::{self, Lexed, Tok, TokKind};

/// Every `unsafe` block / fn / impl must carry a `// SAFETY:` justification
/// (or a `# Safety` doc section for unsafe fns).
pub const RULE_UNSAFE: &str = "unsafe-audit";
/// No locks, channels or shared atomic cells in hot-path modules
/// (paper §3.1: sync-free parallelism).
pub const RULE_SYNC: &str = "sync-free-hot-path";
/// No blocking file I/O on the io_uring submission/completion path
/// (paper Fig. 3b: the async pipeline must never stall in a syscall).
pub const RULE_BLOCKING: &str = "no-blocking-io";
/// No unwrap/expect/panic!/unchecked indexing in hot-path modules.
pub const RULE_PANIC: &str = "panic-free-hot-path";
/// Ring-buffer atomics must follow the kernel's acquire/release protocol.
pub const RULE_ATOMIC: &str = "atomic-ordering";
/// A buffer lent to the kernel (SQE prep / buffer registration) must not be
/// dropped, reassigned, truncated or mutably re-borrowed before its
/// completion is reaped, on every path.
pub const RULE_LOAN: &str = "buffer-loan";
/// No lock guard may be live across a ring submit/wait call on any path.
pub const RULE_LOCK_SUBMIT: &str = "lock-across-submit";
/// Fallible ring operations must not have their errors discarded with
/// `let _ =` or `.ok()`.
pub const RULE_SWALLOWED: &str = "swallowed-ring-error";
/// Kernel resource counters (`getrusage`, procfs) may only be sampled at
/// epoch boundaries; the per-batch path is limited to the single
/// `CLOCK_THREAD_CPUTIME_ID` read (`ringstat::thread_cpu_nanos`). Every
/// epoch-boundary site carries a reasoned allow naming its boundary.
pub const RULE_RESOURCE: &str = "resource-discipline";
/// Exemption hygiene (reported, never scoped): a `ringlint: allow(..)`
/// comment that no longer suppresses any finding.
pub const RULE_STALE: &str = "stale-allow";

/// All scoped rules, in reporting order.
pub const ALL_RULES: &[&str] = &[
    RULE_UNSAFE,
    RULE_SYNC,
    RULE_BLOCKING,
    RULE_PANIC,
    RULE_ATOMIC,
    RULE_RESOURCE,
    RULE_LOAN,
    RULE_LOCK_SUBMIT,
    RULE_SWALLOWED,
];

/// A parsed `// ringlint: allow(<rule>) — <reason>` comment.
#[derive(Debug)]
struct Allow {
    rule: String,
    line: u32,
    reason: String,
    used: bool,
}

/// Result of linting one file: surviving violations plus how many were
/// suppressed by allow comments.
pub struct FileOutcome {
    /// Violations that survived allow filtering (includes missing-reason
    /// diagnostics for the allows themselves).
    pub violations: Vec<Violation>,
    /// Count of violations suppressed by a well-formed allow.
    pub allowed: usize,
}

/// Lints one file's source, applying only the rules scoped to `rel`.
pub fn lint_source(rel: &str, src: &str) -> FileOutcome {
    let lx = lexer::lex(src);
    let active = config::rules_for(rel);
    let a = Analysis::new(rel, &lx);
    let mut raw: Vec<Violation> = Vec::new();
    for rule in &active {
        match *rule {
            RULE_UNSAFE => unsafe_audit(&a, &mut raw),
            RULE_SYNC => sync_free(&a, &mut raw),
            RULE_BLOCKING => no_blocking_io(&a, &mut raw),
            RULE_PANIC => panic_free(&a, &mut raw),
            RULE_ATOMIC => atomic_ordering(&a, &mut raw),
            RULE_RESOURCE => resource_discipline(&a, &mut raw),
            _ => {}
        }
    }
    // The statement-level dataflow rules share one parse + analysis pass.
    if active
        .iter()
        .any(|r| matches!(*r, RULE_LOAN | RULE_LOCK_SUBMIT | RULE_SWALLOWED))
    {
        let parsed = crate::parse::parse(&lx.tokens);
        for f in crate::dataflow::analyze_file(&lx.tokens, &parsed, &a.skip) {
            if active.contains(&f.rule) {
                raw.push(Violation {
                    rule: f.rule,
                    file: rel.to_string(),
                    line: f.line,
                    message: f.message,
                });
            }
        }
    }
    a.apply_allows(rel, raw)
}

/// Shared per-file analysis context: tokens, comments, test-region mask,
/// line → first-token map, and the parsed allow comments.
struct Analysis<'a> {
    rel: &'a str,
    lx: &'a Lexed,
    /// Token indices inside `#[cfg(test)] mod { .. }` regions.
    skip: Vec<bool>,
    /// Line ranges covered by those regions (for stale-allow exemption:
    /// rules never fire there, so allows there can't be proven stale).
    test_ranges: Vec<(u32, u32)>,
    /// 1-based line → index of its first token, if any.
    first_tok_on_line: Vec<Option<usize>>,
    allows: std::cell::RefCell<Vec<Allow>>,
}

impl<'a> Analysis<'a> {
    fn new(rel: &'a str, lx: &'a Lexed) -> Self {
        let toks = &lx.tokens;
        let max_line = toks.iter().map(|t| t.line).max().unwrap_or(0) as usize;
        let mut first_tok_on_line = vec![None; max_line + 2];
        for (i, t) in toks.iter().enumerate() {
            let slot = &mut first_tok_on_line[t.line as usize];
            if slot.is_none() {
                *slot = Some(i);
            }
        }
        let skip = test_region_mask(toks);
        let test_ranges = test_line_ranges(toks, &skip);
        let allows = lx
            .comments
            .iter()
            .filter_map(|c| parse_allow(&c.text).map(|(rule, reason)| Allow {
                rule,
                line: c.line,
                reason,
                used: false,
            }))
            .collect();
        Self {
            rel,
            lx,
            skip,
            test_ranges,
            first_tok_on_line,
            allows: std::cell::RefCell::new(allows),
        }
    }

    fn toks(&self) -> &[Tok] {
        &self.lx.tokens
    }

    fn text(&self, i: usize) -> &str {
        self.lx.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    fn violation(&self, out: &mut Vec<Violation>, rule: &'static str, line: u32, msg: String) {
        out.push(Violation { rule, file: self.rel.to_string(), line, message: msg });
    }

    /// Finds an allow for `rule` covering `line`: either a trailing comment
    /// on the same line, or one in the contiguous comment run directly
    /// above the line. Marks it used and reports whether it had a reason.
    fn find_allow(&self, rule: &str, line: u32) -> Option<bool> {
        let mut allows = self.allows.borrow_mut();
        // Same-line trailing comment.
        if let Some(a) = allows.iter_mut().find(|a| a.rule == rule && a.line == line) {
            a.used = true;
            return Some(!a.reason.is_empty());
        }
        // Comment run directly above: walk up through comment-only lines.
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let comment_here = self.lx.comments_on_line(l).next().is_some();
            let code_here = self.lx.has_code_on(l);
            if code_here || !comment_here {
                break;
            }
            if let Some(a) = allows.iter_mut().find(|a| a.rule == rule && a.line == l) {
                a.used = true;
                return Some(!a.reason.is_empty());
            }
            l -= 1;
        }
        None
    }

    /// Filters raw violations through the allow comments, adding
    /// missing-reason diagnostics for malformed allows.
    fn apply_allows(&self, rel: &str, raw: Vec<Violation>) -> FileOutcome {
        let mut violations = Vec::new();
        let mut allowed = 0usize;
        for v in raw {
            match self.find_allow(v.rule, v.line) {
                Some(true) => allowed += 1,
                Some(false) => violations.push(Violation {
                    rule: v.rule,
                    file: rel.to_string(),
                    line: v.line,
                    message: format!(
                        "`ringlint: allow({})` requires a reason after the rule name",
                        v.rule
                    ),
                }),
                None => violations.push(v),
            }
        }
        // Exemption hygiene: an allow that suppressed nothing is itself a
        // violation, so exemptions can't outlive the finding they excused.
        // Allows inside `#[cfg(test)] mod` regions are exempt — no rule
        // ever fires there, so "unused" proves nothing.
        for a in self.allows.borrow().iter() {
            if a.used
                || self
                    .test_ranges
                    .iter()
                    .any(|&(s, e)| a.line >= s && a.line <= e)
            {
                continue;
            }
            let why = if a.reason.is_empty() {
                String::new()
            } else {
                format!(" (its reason was: {})", a.reason)
            };
            violations.push(Violation {
                rule: RULE_STALE,
                file: rel.to_string(),
                line: a.line,
                message: format!(
                    "stale `ringlint: allow({})`: no {} finding left to suppress here — remove the exemption{}",
                    a.rule, a.rule, why
                ),
            });
        }
        FileOutcome { violations, allowed }
    }
}

/// Parses `ringlint: allow(rule) — reason` out of one comment, returning
/// the rule name and the (possibly empty) reason text. The directive must
/// lead the comment (only `//`/`/*` markers and whitespace before it):
/// prose that merely *mentions* the syntax is not an exemption.
fn parse_allow(comment: &str) -> Option<(String, String)> {
    let lead = comment
        .trim_start_matches(|c: char| c == '/' || c == '*' || c == '!' || c.is_whitespace());
    if !lead.starts_with("ringlint:") {
        return None;
    }
    let rest = lead["ringlint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':' || c == '–');
    Some((rule, reason.trim().to_string()))
}

/// Line ranges covered by `#[cfg(test)] mod` token regions.
fn test_line_ranges(toks: &[Tok], skip: &[bool]) -> Vec<(u32, u32)> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut cur: Option<(u32, u32)> = None;
    for (i, t) in toks.iter().enumerate() {
        if skip.get(i).copied().unwrap_or(false) {
            cur = match cur {
                None => Some((t.line, t.line)),
                Some((s, _)) => Some((s, t.line)),
            };
        } else if let Some(r) = cur.take() {
            ranges.push(r);
        }
    }
    if let Some(r) = cur {
        ranges.push(r);
    }
    ranges
}

/// Marks token indices inside `#[cfg(test)] mod name { .. }` regions.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
            && toks.get(i + 2).is_some_and(|t| t.text == "cfg")
            && toks.get(i + 3).is_some_and(|t| t.text == "(")
        {
            // Scan the cfg(...) attribute for the `test` predicate.
            let mut j = i + 4;
            let mut depth = 1usize;
            let mut has_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "test" => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Expect the closing `]` of the attribute.
            if has_test && toks.get(j).is_some_and(|t| t.text == "]") {
                j += 1;
                // Skip any further attributes and visibility qualifiers.
                loop {
                    if toks.get(j).is_some_and(|t| t.text == "#")
                        && toks.get(j + 1).is_some_and(|t| t.text == "[")
                    {
                        let mut depth = 0usize;
                        while j < toks.len() {
                            match toks[j].text.as_str() {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        j += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    } else if toks.get(j).is_some_and(|t| t.text == "pub") {
                        j += 1;
                        if toks.get(j).is_some_and(|t| t.text == "(") {
                            while j < toks.len() && toks[j].text != ")" {
                                j += 1;
                            }
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                // A test module: skip to the matching close brace.
                if toks.get(j).is_some_and(|t| t.text == "mod") {
                    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.text == "{") {
                        let mut depth = 0usize;
                        let start = i;
                        while j < toks.len() {
                            match toks[j].text.as_str() {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        for s in skip.iter_mut().take((j + 1).min(toks.len())).skip(start) {
                            *s = true;
                        }
                        i = j + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    skip
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe-audit
// ---------------------------------------------------------------------------

fn unsafe_audit(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let toks = a.toks();
    for (i, tok) in toks.iter().enumerate() {
        if a.skip[i] || tok.text != "unsafe" || tok.kind != TokKind::Ident {
            continue;
        }
        // `unsafe fn(..)` / `unsafe extern "C" fn(..)` as *types* (function
        // pointers, trait bounds) carry no body and need no justification.
        if a.text(i + 1) == "fn" && a.text(i + 2) == "(" {
            continue;
        }
        if a.text(i + 1) == "extern" && a.text(i + 3) == "fn" && a.text(i + 4) == "(" {
            continue;
        }
        let kind = match a.text(i + 1) {
            "impl" => "impl",
            "fn" => "fn",
            "trait" => "trait",
            "extern" => "extern block",
            _ => "block",
        };
        if !has_safety_comment(a, tok.line) {
            a.violation(
                out,
                RULE_UNSAFE,
                tok.line,
                format!("unsafe {kind} without a preceding `// SAFETY:` justification"),
            );
        }
    }
}

/// True if `line` (or the contiguous comment/attribute run directly above
/// it) carries a `SAFETY:` comment or a `# Safety` doc section.
fn has_safety_comment(a: &Analysis<'_>, line: u32) -> bool {
    let is_safety = |text: &str| text.contains("SAFETY") || text.contains("# Safety");
    if a.lx.comments_on_line(line).any(|c| is_safety(&c.text)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    let mut scanned = 0;
    while l >= 1 && scanned < 60 {
        if a.lx.comments_on_line(l).any(|c| is_safety(&c.text)) {
            return true;
        }
        let has_comment = a.lx.comments_on_line(l).next().is_some();
        match a.first_tok_on_line.get(l as usize).copied().flatten() {
            // Attribute lines sit between doc comments and the item.
            Some(idx) if a.text(idx) == "#" => {}
            Some(_) => return false,
            None if !has_comment => return false,
            None => {}
        }
        l -= 1;
        scanned += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 2: sync-free-hot-path
// ---------------------------------------------------------------------------

fn sync_free(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let toks = a.toks();
    for i in 0..toks.len() {
        if a.skip[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        match toks[i].text.as_str() {
            prim @ ("Mutex" | "RwLock" | "Condvar" | "Barrier") => {
                a.violation(
                    out,
                    RULE_SYNC,
                    toks[i].line,
                    format!("synchronization primitive `{prim}` in a hot-path module (paper \u{a7}3.1: workers must be sync-free)"),
                );
            }
            "mpsc" => {
                a.violation(
                    out,
                    RULE_SYNC,
                    toks[i].line,
                    "channel (`mpsc`) in a hot-path module (paper \u{a7}3.1: workers must be sync-free)".to_string(),
                );
            }
            "Arc" if a.text(i + 1) == "<" => {
                // `Arc<AtomicX>` / `Arc<sync::atomic::AtomicX>`: shared
                // mutable cells smuggled past the no-lock rule.
                let mut j = i + 2;
                let mut depth = 1usize;
                while j < toks.len() && depth > 0 && j < i + 16 {
                    match toks[j].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        t if depth == 1 && t.starts_with("Atomic") => {
                            a.violation(
                                out,
                                RULE_SYNC,
                                toks[i].line,
                                format!("shared `Arc<{t}>` mutation cell in a hot-path module; give each worker private state instead"),
                            );
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: no-blocking-io
// ---------------------------------------------------------------------------

const BLOCKING_METHODS: &[&str] = &[
    "read_at",
    "read_exact_at",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "seek",
    "write_all",
    "write_at",
    "sync_all",
    "sync_data",
    "sleep",
];

fn no_blocking_io(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let toks = a.toks();
    for i in 0..toks.len() {
        if a.skip[i] {
            continue;
        }
        // `.read_at(..)` style blocking calls.
        if toks[i].text == "."
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && BLOCKING_METHODS.contains(&t.text.as_str())
            })
            && a.text(i + 2) == "("
        {
            let name = &toks[i + 1];
            a.violation(
                out,
                RULE_BLOCKING,
                name.line,
                format!("blocking call `.{}()` on the io_uring submission/completion path (Fig. 3b: use SQE submission instead)", name.text),
            );
        }
        // `fs::read(..)` convenience helpers.
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "fs"
            && a.text(i + 1) == "::"
            && toks.get(i + 2).is_some_and(|t| {
                matches!(t.text.as_str(), "read" | "write" | "read_to_string" | "copy")
            })
        {
            a.violation(
                out,
                RULE_BLOCKING,
                toks[i].line,
                format!("blocking `fs::{}` on the io_uring submission/completion path", a.text(i + 2)),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: panic-free-hot-path
// ---------------------------------------------------------------------------

fn panic_free(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let toks = a.toks();
    for i in 0..toks.len() {
        if a.skip[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(..)`.
        if t.text == "."
            && toks
                .get(i + 1)
                .is_some_and(|n| n.text == "unwrap" || n.text == "expect")
            && a.text(i + 2) == "("
        {
            let name = &toks[i + 1];
            a.violation(
                out,
                RULE_PANIC,
                name.line,
                format!("`.{}()` in a hot-path module; propagate an error or document infallibility", name.text),
            );
        }
        // panic-family macros.
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && a.text(i + 1) == "!"
        {
            a.violation(
                out,
                RULE_PANIC,
                t.line,
                format!("`{}!` in a hot-path module; propagate an error instead", t.text),
            );
        }
        // Unchecked scalar indexing `expr[idx]`: an index expression whose
        // bracket directly follows a value (identifier or closing bracket)
        // and contains no top-level range (slicing is a separate pattern).
        if t.text == "[" && i > 0 {
            let prev = &toks[i - 1];
            let is_index_base = (prev.kind == TokKind::Ident
                && !is_keyword_before_bracket(&prev.text))
                || prev.text == ")"
                || prev.text == "]";
            if is_index_base && !a.skip[i - 1] {
                let mut j = i + 1;
                let mut depth = 1usize;
                let mut has_range = false;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        ".." | "..=" | "..." if depth == 1 => has_range = true,
                        _ => {}
                    }
                    j += 1;
                }
                if !has_range {
                    a.violation(
                        out,
                        RULE_PANIC,
                        t.line,
                        "unchecked indexing `[..]` in a hot-path module; use `.get()` or document the bound".to_string(),
                    );
                }
            }
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (e.g. `return [..]`, `in [..]`).
fn is_keyword_before_bracket(text: &str) -> bool {
    matches!(
        text,
        "return" | "in" | "as" | "else" | "match" | "if" | "while" | "break" | "mut" | "const"
    )
}

// ---------------------------------------------------------------------------
// Rule 5: atomic-ordering
// ---------------------------------------------------------------------------

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

fn atomic_ordering(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let toks = a.toks();
    for i in 0..toks.len() {
        if a.skip[i]
            || toks[i].text != "Ordering"
            || a.text(i + 1) != "::"
            || toks.get(i + 2).is_none()
        {
            continue;
        }
        let ord = a.text(i + 2).to_string();
        let line = toks[i].line;
        // Walk backwards inside the current statement for the atomic op
        // this ordering parameterizes. `Ordering` tokens with no atomic op
        // nearby are `cmp::Ordering` and are skipped.
        let mut op: Option<&str> = None;
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 30 {
            j -= 1;
            steps += 1;
            let tj = toks[j].text.as_str();
            if matches!(tj, ";" | "{" | "}") {
                break;
            }
            if ATOMIC_OPS.contains(&tj) && j > 0 && toks[j - 1].text == "." {
                op = Some(ATOMIC_OPS[ATOMIC_OPS.iter().position(|&o| o == tj).unwrap_or(0)]);
                break;
            }
        }
        let Some(op) = op else { continue };
        match op {
            "load" if ord != "Acquire" => a.violation(
                out,
                RULE_ATOMIC,
                line,
                format!("atomic load of a ring field must be `Ordering::Acquire` (found `{ord}`): kernel-published values need acquire semantics"),
            ),
            "store" if ord != "Release" => a.violation(
                out,
                RULE_ATOMIC,
                line,
                format!("atomic store to a ring field must be `Ordering::Release` (found `{ord}`): tail/head publishes must order prior writes"),
            ),
            "load" | "store" => {}
            _ if ord == "Relaxed" || ord == "SeqCst" => a.violation(
                out,
                RULE_ATOMIC,
                line,
                format!("`Ordering::{ord}` on atomic `{op}` of a ring field; the SQ/CQ protocol requires acquire/release discipline"),
            ),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: resource-discipline
// ---------------------------------------------------------------------------

/// Flags kernel resource-counter reads in hot-path modules: `getrusage`
/// and `/proc/self/io` (via `proc_io_now` or `ResourceSample::now`) are
/// epoch-boundary operations — two syscalls and a procfs parse — and
/// must never ride the per-batch loop, which is limited to the single
/// `CLOCK_THREAD_CPUTIME_ID` read (`thread_cpu_nanos`, not flagged).
/// Legitimate epoch-boundary sites carry a reasoned allow naming the
/// boundary they run on.
fn resource_discipline(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let toks = a.toks();
    for (i, tok) in toks.iter().enumerate() {
        if a.skip[i] || tok.kind != TokKind::Ident {
            continue;
        }
        // Definitions (`pub fn proc_io_now(..)`) are not call sites.
        if i > 0 && a.text(i - 1) == "fn" {
            continue;
        }
        match tok.text.as_str() {
            name @ ("getrusage" | "proc_io_now") if a.text(i + 1) == "(" => {
                a.violation(
                    out,
                    RULE_RESOURCE,
                    tok.line,
                    format!(
                        "kernel resource read `{name}()` in a hot-path module; per-batch code may only read CLOCK_THREAD_CPUTIME_ID (`thread_cpu_nanos`) — sample rusage/procfs at epoch boundaries and name the boundary in an allow"
                    ),
                );
            }
            "ResourceSample" if a.text(i + 1) == "::" && a.text(i + 2) == "now" => {
                a.violation(
                    out,
                    RULE_RESOURCE,
                    tok.line,
                    "`ResourceSample::now()` (getrusage + procfs) in a hot-path module; per-batch code may only read CLOCK_THREAD_CPUTIME_ID (`thread_cpu_nanos`) — sample at epoch boundaries and name the boundary in an allow".to_string(),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_at(rel: &str, src: &str) -> Vec<Violation> {
        lint_source(rel, src).violations
    }

    const HOT: &str = "crates/core/src/worker.rs";
    const RING: &str = "crates/io/src/ring.rs";

    #[test]
    fn unsafe_without_safety_flagged() {
        let v = lint_at("crates/x/src/a.rs", "fn f() { unsafe { g(); } }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNSAFE);
    }

    #[test]
    fn unsafe_with_safety_ok() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions here\n    unsafe { g(); }\n}";
        assert!(lint_at("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_with_doc_safety_section_ok() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller must uphold X.\n#[inline]\npub unsafe fn f() {}";
        assert!(lint_at("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_pointer_type_ignored() {
        let src = "type F = unsafe fn(i32) -> i32;";
        assert!(lint_at("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_module_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x: Option<u8> = None; x.unwrap(); unsafe { g(); } }\n}";
        assert!(lint_at(HOT, src).is_empty());
    }

    #[test]
    fn mutex_in_hot_path_flagged_only_in_scope() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(lint_at(HOT, src).len(), 1);
        assert!(lint_at("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn arc_atomic_flagged_but_plain_arc_ok() {
        assert_eq!(lint_at(HOT, "fn f(x: Arc<AtomicU64>) {}").len(), 1);
        assert!(lint_at(HOT, "fn f(g: Arc<CsrGraph>) {}").is_empty());
    }

    #[test]
    fn unwrap_and_indexing_flagged_in_hot_path() {
        let v = lint_at(HOT, "fn f(v: &[u8], i: usize) -> u8 { let x = v.first().unwrap(); v[i] }");
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == RULE_PANIC));
    }

    #[test]
    fn slicing_not_flagged_as_indexing() {
        assert!(lint_at(HOT, "fn f(v: &[u8]) -> &[u8] { &v[1..3] }").is_empty());
        assert!(lint_at(HOT, "fn f(v: &[u8]) -> &[u8] { &v[..] }").is_empty());
    }

    #[test]
    fn array_literals_and_attrs_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> [u8; 2] { [1, 2] }";
        assert!(lint_at(HOT, src).is_empty());
    }

    #[test]
    fn blocking_read_flagged_on_io_path() {
        let src = "fn f(file: &File, buf: &mut [u8]) { file.read_at(buf, 0); }";
        let v = lint_at(RING, src);
        assert!(v.iter().any(|v| v.rule == RULE_BLOCKING));
        // mmap.rs is the sanctioned synchronous fallback.
        assert!(lint_at("crates/io/src/mmap.rs", src)
            .iter()
            .all(|v| v.rule != RULE_BLOCKING));
    }

    #[test]
    fn atomic_load_must_be_acquire() {
        let src = "fn f(p: *const AtomicU32) { let _ = unsafe { (*p).load(Ordering::Relaxed) }; }";
        let v = lint_at(RING, src);
        assert!(v.iter().any(|v| v.rule == RULE_ATOMIC));
    }

    #[test]
    fn atomic_store_must_be_release() {
        let good = "// SAFETY: p valid\nfn f(p: *const AtomicU32) { unsafe { (*p).store(1, Ordering::Release) } }";
        assert!(lint_at(RING, good)
            .iter()
            .all(|v| v.rule != RULE_ATOMIC));
        let bad = "// SAFETY: p valid\nfn f(p: *const AtomicU32) { unsafe { (*p).store(1, Ordering::SeqCst) } }";
        assert!(lint_at(RING, bad).iter().any(|v| v.rule == RULE_ATOMIC));
    }

    #[test]
    fn cmp_ordering_not_confused_with_atomics() {
        let src = "fn f(a: u32, b: u32) -> Ordering { a.cmp(&b).then(Ordering::Equal) }";
        assert!(lint_at(RING, src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // ringlint: allow(panic-free-hot-path) — index bounded by loop\n    v[0]\n}";
        let o = lint_source(HOT, src);
        assert!(o.violations.is_empty());
        assert_eq!(o.allowed, 1);
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // ringlint: allow(panic-free-hot-path)\n    v[0]\n}";
        let o = lint_source(HOT, src);
        assert_eq!(o.violations.len(), 1);
        assert!(o.violations[0].message.contains("requires a reason"));
    }

    #[test]
    fn trailing_allow_on_same_line_works() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] } // ringlint: allow(panic-free-hot-path) — fixture";
        let o = lint_source(HOT, src);
        assert!(o.violations.is_empty());
        assert_eq!(o.allowed, 1);
    }

    #[test]
    fn patterns_inside_strings_ignored() {
        let src = "fn f() -> &'static str { \"Mutex .unwrap() fs::read\" }";
        assert!(lint_at(HOT, src).is_empty());
    }

    #[test]
    fn resource_reads_flagged_in_hot_path_only() {
        for src in [
            "fn f() { let s = ResourceSample::now(); }",
            "fn f() { let (rb, rc) = proc_io_now(); }",
            "fn f(ru: &mut rusage) { unsafe { getrusage(RUSAGE_THREAD, ru) }; }",
        ] {
            let v = lint_at(HOT, src);
            assert!(
                v.iter().any(|v| v.rule == RULE_RESOURCE),
                "{src} not flagged: {v:?}"
            );
            // Cold modules may sample freely (epoch drivers, tests, tools).
            assert!(lint_at("crates/bench/src/lib.rs", src)
                .iter()
                .all(|v| v.rule != RULE_RESOURCE));
        }
    }

    #[test]
    fn thread_cpu_clock_read_is_sanctioned() {
        // The one per-batch read: a single CLOCK_THREAD_CPUTIME_ID
        // clock_gettime, wrapped as thread_cpu_nanos. Never flagged.
        let src = "fn f() -> u64 { thread_cpu_nanos() }";
        assert!(lint_at(HOT, src).is_empty());
    }

    #[test]
    fn resource_definitions_are_not_call_sites() {
        let src = "pub fn proc_io_now() -> (u64, u64) { (0, 0) }";
        assert!(lint_at(HOT, src).is_empty());
    }

    #[test]
    fn resource_allow_with_boundary_reason_suppresses() {
        let src = "fn begin_epoch() {\n    // ringlint: allow(resource-discipline) — epoch boundary: runs once before the batch loop\n    let s = ResourceSample::now();\n}";
        let o = lint_source(HOT, src);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert_eq!(o.allowed, 1);
    }
}
