//! Intra-function dataflow for the io_uring buffer-loan lifecycle.
//!
//! A *loan* opens when a binding's pointer or slice flows into an SQE
//! preparation call (`prepare_read*`, `prepare_write*`, registered-buffer
//! setup) and closes when a reap call (`wait_completion`, a completion
//! drain, `complete_group`, buffer unregistration) runs — or when the
//! binding's ownership escapes the function (moved into a struct literal,
//! a call argument, or a field). Between open and close the kernel may
//! read or write through the raw pointer, so the binding must not be
//! dropped, reassigned, truncated, reallocated, or mutably re-borrowed.
//! The Rust borrow checker cannot see this: the pointer crossed a raw
//! syscall boundary.
//!
//! Three loan flavors, with different obligations:
//!
//! * **local** — a `let`-bound buffer. Full lifecycle: mutation, `drop`,
//!   reassignment and `&mut` re-borrow while lent are violations, and so
//!   is reaching the end of the binding's scope with the loan open
//!   (drop-before-reap).
//! * **param** — a function parameter. The caller owns the buffer, so no
//!   scope-end obligation, but mutating or reassigning it while lent is
//!   still flagged.
//! * **pool** — a slot handle from a `FixedBufPool`-style `.acquire(..)`.
//!   The pool owns the allocation, so no scope-end obligation, but
//!   releasing the slot while its buffer is lent (or lending/using it
//!   after release) is a violation.
//! * **pbuf** — a provided-buffer id from a kernel-selected read
//!   (`IOSQE_BUFFER_SELECT` / `buf_ring_copy`). The lifecycle is
//!   inverted: userspace owns the id from CQE extraction until
//!   `.buf_ring_recycle(bid)` hands it back, at which point the kernel
//!   may immediately refill the buffer for another read. Using the id
//!   after recycling, or recycling it twice, is a violation.
//!
//! Path sensitivity: `if`/`else` chains and `match` arms are analyzed with
//! cloned state and merged — a loan counts as closed only if every branch
//! closes it. Loop bodies are analyzed linearly once. Expression-position
//! conditionals (`let x = if c { .. } else { .. };`) are flattened and
//! analyzed as straight-line code; closures are analyzed at their
//! definition site as if they ran immediately. See DESIGN.md §11 for the
//! full model and its limits.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Tok, TokKind};
use crate::parse::{self, Delim, Group, Parsed, Tree};
use crate::rules::{RULE_LOAN, RULE_LOCK_SUBMIT, RULE_SWALLOWED};

/// One dataflow finding, before allow filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// Calls that lend a buffer to the kernel: any binding whose pointer
/// appears in the argument list opens (or re-opens) a loan.
const OPEN_CALLS: &[&str] = &[
    "prepare_read",
    "prepare_read_fixed",
    "prepare_read_fixed_buf",
    "prepare_write",
    "prepare_write_fixed",
    "register_buffers",
    "io_uring_register",
];

/// Calls that reap completions (or unregister buffers): every open loan in
/// scope closes, because the kernel is done with the memory.
const CLOSE_CALLS: &[&str] = &[
    "wait_completion",
    "drain_completions",
    "complete_group",
    "wait_group",
    "unregister_buffers",
    "pump_one",
];

/// Calls that enter the ring: no lock guard may be live across them
/// (a blocked submitter would hold the lock across a syscall).
const SUBMIT_CALLS: &[&str] = &[
    "submit",
    "submit_and_wait",
    "wait_completion",
    "peek_completion",
    "drain_completions",
    "submit_group",
    "complete_group",
    "wait_group",
    "io_uring_enter",
    "read_group_blocking",
];

/// Fallible ring operations whose `Result` must not be discarded with
/// `let _ =` or `.ok()`.
const RING_FALLIBLE: &[&str] = &[
    "submit",
    "submit_and_wait",
    "wait_completion",
    "submit_group",
    "complete_group",
    "wait_group",
    "register_file",
    "register_files",
    "register_buffers",
    "register_read_buffers",
    "unregister_buffers",
    "unregister_files",
    "prepare_read",
    "prepare_read_fixed",
    "prepare_read_fixed_buf",
    "prepare_read_select",
    "prepare_write",
    "prepare_write_fixed",
    "prepare_nop",
    "unregister_buf_ring",
    "io_uring_enter",
    "io_uring_setup",
    "io_uring_register",
    "pump_one",
];

/// Methods that move, shrink or reallocate a buffer's storage — fatal
/// while the kernel holds its pointer.
const MUT_METHODS: &[&str] = &[
    "clear",
    "resize",
    "truncate",
    "push",
    "pop",
    "extend",
    "extend_from_slice",
    "reserve",
    "reserve_exact",
    "shrink_to_fit",
    "shrink_to",
    "set_len",
    "drain",
    "insert",
    "remove",
    "append",
    "split_off",
];

/// Methods whose receiver becomes a pointer source: `let p = buf.as_ptr()`
/// taints `p` with source `buf`, so lending `p` lends `buf`.
const PTR_SOURCES: &[&str] = &[
    "as_ptr",
    "as_mut_ptr",
    "iter",
    "iter_mut",
    "as_slice",
    "as_mut_slice",
];

/// Keywords that look like identifiers but never name a binding.
const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "if", "else", "match", "while", "for", "loop", "in", "fn", "return",
    "break", "continue", "as", "move", "unsafe", "pub", "use", "self", "Self", "super", "crate",
    "where", "impl", "trait", "struct", "enum", "mod", "const", "static", "type", "dyn", "true",
    "false", "box",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoanKind {
    Local,
    Param,
    Pool,
    /// A provided-buffer id (`bid`) extracted from a BUFFER_SELECT CQE:
    /// owned by userspace until `.buf_ring_recycle(bid)` returns it.
    Pbuf,
}

/// One open (or closed) loan: a set of binding names that all refer to the
/// lent allocation (the buffer itself, slot indices, base pointers).
#[derive(Debug, Clone)]
struct Loan {
    id: usize,
    kind: LoanKind,
    names: Vec<String>,
    /// Line of the opening event (prepare call, or `.acquire(..)`).
    line: u32,
    /// Scope depth of the binding's declaration (drop-before-reap fires
    /// when this scope ends with the loan open). 0 for params/pools.
    scope: usize,
    lent: bool,
    closed: bool,
    released: bool,
    release_line: u32,
    reported: bool,
}

/// A lock guard binding: live from its `let g = x.lock()..` until
/// `drop(g)` or scope end.
#[derive(Debug, Clone)]
struct Guard {
    name: String,
    line: u32,
    scope: usize,
    dropped: bool,
    reported: bool,
}

/// Per-path analysis state, cloned at branches and merged after.
#[derive(Debug, Default, Clone)]
struct State {
    loans: Vec<Loan>,
    guards: Vec<Guard>,
    /// Taint: binding -> bindings whose storage its value points into.
    sources: HashMap<String, Vec<String>>,
    /// `let`-bound names -> declaration scope depth.
    decl_scope: HashMap<String, usize>,
    params: HashSet<String>,
}

struct Ctx<'a> {
    toks: &'a [Tok],
    out: Vec<Finding>,
    next_id: usize,
}

/// Runs the loan-lifecycle, lock-across-submit and swallowed-error
/// analyses over every function in a parsed file. `skip` masks tokens
/// inside `#[cfg(test)] mod` regions (same mask the token rules use).
pub fn analyze_file(toks: &[Tok], parsed: &Parsed, skip: &[bool]) -> Vec<Finding> {
    let mut ctx = Ctx {
        toks,
        out: Vec::new(),
        next_id: 0,
    };
    for f in parse::functions(parsed, toks) {
        if skip.get(f.body.open).copied().unwrap_or(false) {
            continue; // test-only code is not the lint's business
        }
        let mut st = State::default();
        collect_params(f.args, toks, &mut st);
        ctx.analyze_block(&f.body.children, &mut st, 1);
        ctx.end_scope(&mut st, 1);
    }
    ctx.out
        .sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    ctx.out.dedup();
    ctx.out
}

/// Registers `name: Type` parameters (and `self`) from the arg list.
fn collect_params(args: &Group, toks: &[Tok], st: &mut State) {
    let mut flat = Vec::new();
    for t in &args.children {
        flatten_tree(t, &mut flat);
    }
    for (k, &ti) in flat.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "self" {
            st.params.insert("self".to_string());
            continue;
        }
        // A binding name is an ident directly followed by `:` (not `::`).
        if flat
            .get(k + 1)
            .is_some_and(|&n| toks[n].text == ":")
            && !KEYWORDS.contains(&t.text.as_str())
        {
            st.params.insert(t.text.clone());
        }
    }
}

fn flatten_tree(tree: &Tree, out: &mut Vec<usize>) {
    match tree {
        Tree::Leaf(i) => out.push(*i),
        Tree::Group(g) => {
            out.push(g.open);
            for c in &g.children {
                flatten_tree(c, out);
            }
            if let Some(c) = g.close {
                out.push(c);
            }
        }
    }
}

fn leaf_text<'t>(tree: &Tree, toks: &'t [Tok]) -> Option<&'t str> {
    match tree {
        Tree::Leaf(i) => Some(toks[*i].text.as_str()),
        Tree::Group(_) => None,
    }
}

impl<'a> Ctx<'a> {
    fn text_at(&self, seq: &[usize], k: usize) -> &str {
        seq.get(k).map_or("", |&i| self.toks[i].text.as_str())
    }

    fn is_ident(&self, seq: &[usize], k: usize) -> bool {
        seq.get(k)
            .is_some_and(|&i| self.toks[i].kind == TokKind::Ident)
    }

    fn line_at(&self, seq: &[usize], k: usize) -> u32 {
        seq.get(k).map_or(0, |&i| self.toks[i].line)
    }

    fn finding(&mut self, rule: &'static str, line: u32, message: String) {
        self.out.push(Finding {
            rule,
            line,
            message,
        });
    }

    // -- statement splitting ------------------------------------------------

    fn analyze_block(&mut self, trees: &[Tree], st: &mut State, depth: usize) {
        let mut i = 0usize;
        while i < trees.len() {
            if leaf_text(&trees[i], self.toks) == Some(";") {
                i += 1;
                continue;
            }
            i = self.analyze_stmt(trees, i, st, depth);
        }
    }

    /// Analyzes one statement starting at `trees[start]`; returns the index
    /// just past it.
    fn analyze_stmt(
        &mut self,
        trees: &[Tree],
        start: usize,
        st: &mut State,
        depth: usize,
    ) -> usize {
        // Skip leading attributes (`#[..]`) and loop labels (`'a:`).
        let mut j = start;
        while j < trees.len() {
            let is_attr = leaf_text(&trees[j], self.toks) == Some("#")
                && matches!(trees.get(j + 1), Some(Tree::Group(g)) if g.delim == Delim::Bracket);
            if is_attr {
                j += 2;
                continue;
            }
            let is_label = matches!(&trees[j], Tree::Leaf(i) if self.toks[*i].kind == TokKind::Lifetime)
                && trees.get(j + 1).and_then(|t| leaf_text(t, self.toks)) == Some(":");
            if is_label && j + 2 < trees.len() {
                j += 2;
                continue;
            }
            break;
        }
        if j >= trees.len() {
            return trees.len();
        }

        match &trees[j] {
            Tree::Group(g) if g.delim == Delim::Brace => {
                // Bare block statement.
                self.analyze_block(&g.children, st, depth + 1);
                self.end_scope(st, depth + 1);
                j + 1
            }
            Tree::Leaf(ti) => match self.toks[*ti].text.as_str() {
                "if" => self.analyze_if(trees, j, st, depth),
                "match" => self.analyze_match(trees, j, st, depth),
                "for" | "while" | "loop" => self.analyze_loop(trees, j, st, depth),
                "unsafe"
                    if matches!(trees.get(j + 1), Some(Tree::Group(g)) if g.delim == Delim::Brace) =>
                {
                    if let Some(Tree::Group(g)) = trees.get(j + 1) {
                        self.analyze_block(&g.children, st, depth + 1);
                        self.end_scope(st, depth + 1);
                    }
                    j + 2
                }
                // Nested items: the function finder already analyzes nested
                // fn bodies separately; skip the whole item here.
                "fn" | "struct" | "enum" | "impl" | "trait" | "mod" => {
                    let mut k = j + 1;
                    while k < trees.len() {
                        match &trees[k] {
                            Tree::Group(g) if g.delim == Delim::Brace => return k + 1,
                            t if leaf_text(t, self.toks) == Some(";") => return k + 1,
                            _ => k += 1,
                        }
                    }
                    trees.len()
                }
                _ => self.analyze_plain(trees, j, st, depth),
            },
            _ => self.analyze_plain(trees, j, st, depth),
        }
    }

    /// A plain statement: everything up to the next top-level `;` (or end
    /// of block), flattened and scanned linearly.
    fn analyze_plain(
        &mut self,
        trees: &[Tree],
        start: usize,
        st: &mut State,
        depth: usize,
    ) -> usize {
        let mut seq = Vec::new();
        let mut k = start;
        while k < trees.len() {
            if leaf_text(&trees[k], self.toks) == Some(";") {
                k += 1;
                break;
            }
            flatten_tree(&trees[k], &mut seq);
            k += 1;
        }
        self.linear(&seq, st, depth);
        k
    }

    /// `if cond { .. } else if cond { .. } else { .. }` — cond processed in
    /// the parent state, each branch in a clone, merged after.
    fn analyze_if(&mut self, trees: &[Tree], start: usize, st: &mut State, depth: usize) -> usize {
        let mut head: Vec<usize> = Vec::new();
        let mut branches: Vec<&Group> = Vec::new();
        let mut has_final_else = false;
        let mut k = start;
        loop {
            // Scan to the next top-level brace, flattening the condition.
            let mut found: Option<&Group> = None;
            while k < trees.len() {
                match &trees[k] {
                    Tree::Group(g) if g.delim == Delim::Brace => {
                        found = Some(g);
                        k += 1;
                        break;
                    }
                    t => {
                        flatten_tree(t, &mut head);
                        k += 1;
                    }
                }
            }
            match found {
                Some(g) => branches.push(g),
                None => break, // malformed; analyze what we have
            }
            if k < trees.len() && leaf_text(&trees[k], self.toks) == Some("else") {
                if matches!(trees.get(k + 1), Some(Tree::Group(g)) if g.delim == Delim::Brace) {
                    has_final_else = true;
                }
                k += 1;
                continue;
            }
            break;
        }
        // Bindings from `if let ..` conditions are statement-scoped.
        self.linear(&head, st, depth + 1);
        self.run_branches(
            branches
                .iter()
                .map(|g| BranchBody::Block(&g.children))
                .collect(),
            !has_final_else,
            st,
            depth,
        );
        k
    }

    /// `match scrutinee { pat => body, .. }` — each arm is a branch.
    fn analyze_match(
        &mut self,
        trees: &[Tree],
        start: usize,
        st: &mut State,
        depth: usize,
    ) -> usize {
        let mut head: Vec<usize> = Vec::new();
        let mut body: Option<&Group> = None;
        let mut k = start;
        while k < trees.len() {
            match &trees[k] {
                Tree::Group(g) if g.delim == Delim::Brace => {
                    body = Some(g);
                    k += 1;
                    break;
                }
                t => {
                    flatten_tree(t, &mut head);
                    k += 1;
                }
            }
        }
        self.linear(&head, st, depth);
        let Some(body) = body else { return k };
        // Split arms at top-level commas.
        let mut arms: Vec<&[Tree]> = Vec::new();
        let mut arm_start = 0usize;
        for (i, t) in body.children.iter().enumerate() {
            if leaf_text(t, self.toks) == Some(",") {
                if i > arm_start {
                    arms.push(&body.children[arm_start..i]);
                }
                arm_start = i + 1;
            }
        }
        if arm_start < body.children.len() {
            arms.push(&body.children[arm_start..]);
        }
        if !arms.is_empty() {
            self.run_branches(
                arms.into_iter().map(BranchBody::Arm).collect(),
                false, // match is exhaustive: no implicit fall-through path
                st,
                depth,
            );
        }
        k
    }

    /// `for`/`while`/`loop` — the body is analyzed linearly once, in place.
    fn analyze_loop(
        &mut self,
        trees: &[Tree],
        start: usize,
        st: &mut State,
        depth: usize,
    ) -> usize {
        let mut head: Vec<usize> = Vec::new();
        let mut k = start;
        while k < trees.len() {
            match &trees[k] {
                Tree::Group(g) if g.delim == Delim::Brace => {
                    self.linear(&head, st, depth + 1);
                    self.analyze_block(&g.children, st, depth + 1);
                    self.end_scope(st, depth + 1);
                    return k + 1;
                }
                t => {
                    flatten_tree(t, &mut head);
                    k += 1;
                }
            }
        }
        self.linear(&head, st, depth);
        k
    }

    /// Runs each branch body on a clone of `st` and merges the results:
    /// closed only if closed on every path, lent/released if on any path.
    fn run_branches(
        &mut self,
        bodies: Vec<BranchBody<'_>>,
        implicit_fallthrough: bool,
        st: &mut State,
        depth: usize,
    ) {
        let mut outs: Vec<State> = Vec::new();
        for body in bodies {
            let mut b = st.clone();
            match body {
                BranchBody::Block(children) => {
                    self.analyze_block(children, &mut b, depth + 1);
                }
                BranchBody::Arm(arm) => {
                    // `pat [if guard] => body` — process the pattern/guard
                    // linearly, then the body as a block.
                    let arrow = arm.windows(2).position(|w| {
                        leaf_text(&w[0], self.toks) == Some("=")
                            && leaf_text(&w[1], self.toks) == Some(">")
                    });
                    match arrow {
                        Some(p) => {
                            let mut pat = Vec::new();
                            for t in &arm[..p] {
                                flatten_tree(t, &mut pat);
                            }
                            self.linear(&pat, &mut b, depth + 1);
                            self.analyze_block(&arm[p + 2..], &mut b, depth + 1);
                        }
                        None => {
                            self.analyze_block(arm, &mut b, depth + 1);
                        }
                    }
                }
            }
            self.end_scope(&mut b, depth + 1);
            outs.push(b);
        }
        if implicit_fallthrough {
            outs.push(st.clone());
        }
        merge(st, outs);
        self.end_scope(st, depth + 1); // condition-scoped bindings die here
    }

    // -- linear event scan --------------------------------------------------

    /// The core pass: one statement's tokens, scanned left to right.
    fn linear(&mut self, seq: &[usize], st: &mut State, depth: usize) {
        if seq.is_empty() {
            return;
        }
        self.register_lets(seq, st, depth);
        self.check_swallowed_let(seq, st);

        let mut saw_lock_line: Option<u32> = None;
        let mut i = 0usize;
        while i < seq.len() {
            let t = self.text_at(seq, i).to_string();
            let t = t.as_str();

            // drop(x): closes a guard or reports drop-while-lent.
            if t == "drop"
                && self.text_at(seq, i + 1) == "("
                && self.is_ident(seq, i + 2)
                && self.text_at(seq, i + 3) == ")"
            {
                let name = self.text_at(seq, i + 2).to_string();
                let line = self.line_at(seq, i);
                if let Some(g) = st.guards.iter_mut().find(|g| g.name == name) {
                    g.dropped = true;
                }
                let mut msg: Option<(u32, String)> = None;
                if let Some(l) = st
                    .loans
                    .iter_mut()
                    .find(|l| l.names.iter().any(|n| n == &name))
                {
                    if l.kind != LoanKind::Pool && l.lent && !l.closed && !l.reported {
                        msg = Some((
                            line,
                            format!(
                                "`{name}` is dropped while its buffer is lent to the ring \
                                 (loan opened at line {}); reap the completion first",
                                l.line
                            ),
                        ));
                        l.reported = true;
                    }
                    l.closed = true;
                    l.lent = false;
                }
                if let Some((line, m)) = msg {
                    self.finding(RULE_LOAN, line, m);
                }
                i += 4;
                continue;
            }

            // `.lock(` — a guard temporary or the RHS of a guard binding.
            if t == "." && self.text_at(seq, i + 1) == "lock" && self.text_at(seq, i + 2) == "(" {
                saw_lock_line = Some(self.line_at(seq, i + 1));
            }

            // `.release(slot)` on a pool loan.
            if t == "."
                && self.text_at(seq, i + 1) == "release"
                && self.text_at(seq, i + 2) == "("
            {
                let close = self.match_paren(seq, i + 2);
                let mut arg: Option<String> = None;
                for p in i + 3..close {
                    if self.is_ident(seq, p) {
                        arg = Some(self.text_at(seq, p).to_string());
                        break;
                    }
                }
                if let Some(argn) = arg {
                    let line = self.line_at(seq, i + 1);
                    let mut msg: Option<String> = None;
                    if let Some(l) = st
                        .loans
                        .iter_mut()
                        .find(|l| l.kind == LoanKind::Pool && l.names.iter().any(|n| n == &argn))
                    {
                        if l.lent && !l.reported {
                            msg = Some(format!(
                                "pool slot `{argn}` is released while its buffer is still \
                                 lent to the ring (loan opened at line {}); reap the \
                                 completion before releasing",
                                l.line
                            ));
                            l.reported = true;
                        }
                        l.released = true;
                        l.release_line = line;
                        l.lent = false;
                    }
                    if let Some(m) = msg {
                        self.finding(RULE_LOAN, line, m);
                    }
                }
                i = close + 1;
                continue;
            }

            // `.buf_ring_recycle(bid)` — the provided-buffer id returns to
            // the kernel's ring; it may be handed to a new in-flight read
            // immediately, so the id (and the buffer behind it) is dead to
            // userspace from here on.
            if t == "."
                && self.text_at(seq, i + 1) == "buf_ring_recycle"
                && self.text_at(seq, i + 2) == "("
            {
                let close = self.match_paren(seq, i + 2);
                let mut arg: Option<String> = None;
                for p in i + 3..close {
                    if self.is_ident(seq, p) && !KEYWORDS.contains(&self.text_at(seq, p)) {
                        arg = Some(self.text_at(seq, p).to_string());
                        break;
                    }
                }
                if let Some(argn) = arg {
                    let line = self.line_at(seq, i + 1);
                    let mut msg: Option<String> = None;
                    if let Some(l) = st
                        .loans
                        .iter_mut()
                        .find(|l| l.kind == LoanKind::Pbuf && l.names.iter().any(|n| n == &argn))
                    {
                        if l.released && !l.reported {
                            msg = Some(format!(
                                "`{argn}` is recycled to the provided-buffer ring twice \
                                 (first recycled at line {}); a double-recycle hands the \
                                 same buffer to two in-flight reads",
                                l.release_line
                            ));
                            l.reported = true;
                        }
                        l.released = true;
                        l.release_line = line;
                    } else {
                        let scope = st.decl_scope.get(&argn).copied().unwrap_or(0);
                        let id = self.next_id;
                        self.next_id += 1;
                        st.loans.push(Loan {
                            id,
                            kind: LoanKind::Pbuf,
                            names: vec![argn],
                            line,
                            scope,
                            lent: false,
                            closed: true,
                            released: true,
                            release_line: line,
                            reported: false,
                        });
                    }
                    if let Some(m) = msg {
                        self.finding(RULE_LOAN, line, m);
                    }
                }
                i = close + 1;
                continue;
            }

            let is_call = self.is_ident(seq, i) && self.text_at(seq, i + 1) == "(";

            if is_call && OPEN_CALLS.contains(&t) {
                let close = self.match_paren(seq, i + 1);
                let name = t.to_string();
                self.open_loans(seq, i, close, &name, st, depth);
            }

            if is_call && CLOSE_CALLS.contains(&t) {
                for l in st.loans.iter_mut() {
                    if l.kind != LoanKind::Pool {
                        l.closed = true;
                    }
                    l.lent = false;
                }
            }

            if is_call && SUBMIT_CALLS.contains(&t) {
                let line = self.line_at(seq, i);
                let tname = t.to_string();
                let mut msgs = Vec::new();
                for g in st.guards.iter_mut().filter(|g| !g.dropped && !g.reported) {
                    msgs.push(format!(
                        "lock guard `{}` (acquired at line {}) is live across `{}`; \
                         release it before entering the ring",
                        g.name, g.line, tname
                    ));
                    g.reported = true;
                }
                for m in msgs {
                    self.finding(RULE_LOCK_SUBMIT, line, m);
                }
                if let Some(lock_line) = saw_lock_line.take() {
                    self.finding(
                        RULE_LOCK_SUBMIT,
                        line,
                        format!(
                            "lock acquired at line {lock_line} is held across `{tname}` in \
                             the same statement; split the statement so the guard drops first"
                        ),
                    );
                }
            }

            // `ring_op(..).ok()` — swallowed ring error.
            if is_call && RING_FALLIBLE.contains(&t) {
                let close = self.match_paren(seq, i + 1);
                if self.text_at(seq, close + 1) == "."
                    && self.text_at(seq, close + 2) == "ok"
                    && self.text_at(seq, close + 3) == "("
                    && self.text_at(seq, close + 4) == ")"
                {
                    let line = self.line_at(seq, i);
                    self.finding(
                        RULE_SWALLOWED,
                        line,
                        format!("`{t}(..).ok()` discards a ring error; handle or propagate it"),
                    );
                }
            }

            // Binding uses: violations and escapes for loaned names.
            if self.is_ident(seq, i) && !KEYWORDS.contains(&t) {
                let prev = if i > 0 { self.text_at(seq, i - 1) } else { "" };
                if prev != "." && prev != "::" {
                    self.check_binding_use(seq, i, st);
                }
            }

            i += 1;
        }
    }

    /// Handles one occurrence of an ident that may name a loaned binding.
    fn check_binding_use(&mut self, seq: &[usize], i: usize, st: &mut State) {
        let name = self.text_at(seq, i).to_string();
        let line = self.line_at(seq, i);
        let next = self.text_at(seq, i + 1);
        let prev = if i > 0 { self.text_at(seq, i - 1) } else { "" };
        let prev2 = if i > 1 { self.text_at(seq, i - 2) } else { "" };

        let mut msg: Option<String> = None;
        let Some(l) = st
            .loans
            .iter_mut()
            .find(|l| l.names.iter().any(|n| n == &name))
        else {
            return;
        };

        if l.kind == LoanKind::Pool {
            if l.released && !l.reported {
                l.reported = true;
                msg = Some(format!(
                    "`{name}` is used after its pool slot was released at line {}; \
                     the slot may already back another in-flight read",
                    l.release_line
                ));
            }
            if let Some(m) = msg {
                self.finding(RULE_LOAN, line, m);
            }
            return;
        }

        if l.kind == LoanKind::Pbuf {
            if l.released && !l.reported {
                l.reported = true;
                msg = Some(format!(
                    "`{name}` is used after being recycled to the provided-buffer ring \
                     at line {}; the kernel may already be refilling that buffer for \
                     another read",
                    l.release_line
                ));
            }
            if let Some(m) = msg {
                self.finding(RULE_LOAN, line, m);
            }
            return;
        }

        if l.lent && !l.closed {
            // `buf.clear()` / `buf.resize(..)` etc. while lent.
            if next == "."
                && MUT_METHODS.contains(&self.text_at(seq, i + 2))
                && self.text_at(seq, i + 3) == "("
            {
                if !l.reported {
                    l.reported = true;
                    msg = Some(format!(
                        "`{name}.{}()` mutates a buffer lent to the ring (loan opened at \
                         line {}); reap the completion first",
                        self.text_at(seq, i + 2),
                        l.line
                    ));
                }
            // `buf = ..` reassignment while lent (plain `=`, not `==`/`=>`).
            } else if next == "="
                && self.text_at(seq, i + 2) != "="
                && self.text_at(seq, i + 2) != ">"
                && !matches!(prev, "=" | "!" | "<" | ">")
            {
                if !l.reported {
                    l.reported = true;
                    msg = Some(format!(
                        "`{name}` is reassigned while its buffer is lent to the ring \
                         (loan opened at line {}); the old allocation would drop mid-flight",
                        l.line
                    ));
                }
            // `&mut buf` re-borrow while lent.
            } else if prev == "mut" && prev2 == "&" {
                if !l.reported {
                    l.reported = true;
                    msg = Some(format!(
                        "`&mut {name}` re-borrows a buffer lent to the ring (loan opened \
                         at line {}); reap the completion first",
                        l.line
                    ));
                }
            // Bare move into a struct literal, call or assignment RHS:
            // ownership escapes, so someone else keeps the buffer alive.
            } else if matches!(prev, "(" | "," | "{" | "=")
                && matches!(next, "," | ")" | "}" | ";" | "")
            {
                l.closed = true;
                l.lent = false;
            }
        }
        if let Some(m) = msg {
            self.finding(RULE_LOAN, line, m);
        }
    }

    /// Index of the `)` matching the `(` at `seq[open]` (flat depth count);
    /// `seq.len()` if unmatched.
    fn match_paren(&self, seq: &[usize], open: usize) -> usize {
        let mut depth = 0usize;
        let mut k = open;
        while k < seq.len() {
            match self.text_at(seq, k) {
                "(" => depth += 1,
                ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        seq.len()
    }

    /// Opens loans for every buffer whose pointer appears in the argument
    /// list of an OPEN_CALL at `seq[call]` (args span `call+2 .. close`).
    fn open_loans(
        &mut self,
        seq: &[usize],
        call: usize,
        close: usize,
        call_name: &str,
        st: &mut State,
        _depth: usize,
    ) {
        let line = self.line_at(seq, call);
        let mut candidates: Vec<String> = Vec::new();
        for p in call + 2..close {
            if !self.is_ident(seq, p) {
                continue;
            }
            let t = self.text_at(seq, p);
            if KEYWORDS.contains(&t) {
                continue;
            }
            let prev = self.text_at(seq, p - 1);
            if prev == "." || prev == "::" {
                continue; // field or method name, not a binding
            }
            let is_ptr_of = self.text_at(seq, p + 1) == "."
                && matches!(self.text_at(seq, p + 2), "as_ptr" | "as_mut_ptr")
                && self.text_at(seq, p + 3) == "(";
            let is_ref_arg = (prev == "&" || (prev == "mut" && self.text_at(seq, p.wrapping_sub(2)) == "&"))
                && matches!(call_name, "register_buffers" | "io_uring_register");
            let is_tracked = st.loans.iter().any(|l| {
                l.kind == LoanKind::Pool && resolve_roots(st, t).iter().any(|r| l.names.contains(r))
            });
            if is_ptr_of || is_ref_arg || is_tracked {
                candidates.push(t.to_string());
            }
        }
        for c in candidates {
            for root in resolve_roots(st, &c) {
                self.lend(&root, line, st);
            }
        }
    }

    /// Marks `root` as lent, opening a loan if none is active.
    fn lend(&mut self, root: &str, line: u32, st: &mut State) {
        // Pool slot handle?
        let mut msg: Option<String> = None;
        if let Some(l) = st
            .loans
            .iter_mut()
            .find(|l| l.kind == LoanKind::Pool && l.names.iter().any(|n| n == root))
        {
            if l.released && !l.reported {
                l.reported = true;
                msg = Some(format!(
                    "`{root}` is lent to the ring after its pool slot was released at \
                     line {}; acquire a fresh slot instead",
                    l.release_line
                ));
            }
            l.lent = true;
            if let Some(m) = msg {
                self.finding(RULE_LOAN, line, m);
            }
            return;
        }
        // Existing owned loan on this binding?
        if let Some(l) = st
            .loans
            .iter_mut()
            .find(|l| l.kind != LoanKind::Pool && l.names.iter().any(|n| n == root))
        {
            l.lent = true;
            if l.closed {
                // Re-lent after a reap: fresh lifecycle from here.
                l.closed = false;
                l.line = line;
                l.reported = false;
            }
            return;
        }
        let (kind, scope) = if let Some(&s) = st.decl_scope.get(root) {
            (LoanKind::Local, s)
        } else if st.params.contains(root) {
            (LoanKind::Param, 0)
        } else {
            return; // a field or free expression — not trackable
        };
        let id = self.next_id;
        self.next_id += 1;
        st.loans.push(Loan {
            id,
            kind,
            names: vec![root.to_string()],
            line,
            scope,
            lent: true,
            closed: false,
            released: false,
            release_line: 0,
            reported: false,
        });
    }

    /// Registers `let` bindings in the statement: declaration scopes,
    /// pointer-taint sources, pool acquisitions, lock guards and aliases.
    fn register_lets(&mut self, seq: &[usize], st: &mut State, depth: usize) {
        let mut k = 0usize;
        while k < seq.len() {
            if self.text_at(seq, k) != "let" || !self.is_ident(seq, k) {
                k += 1;
                continue;
            }
            // The `=` that ends the pattern (skipping `==`, `=>`, `<=`, ..).
            let mut eq: Option<usize> = None;
            for e in k + 1..seq.len() {
                if self.text_at(seq, e) == "=" {
                    let n = self.text_at(seq, e + 1);
                    let p = self.text_at(seq, e - 1);
                    if n != "=" && n != ">" && !matches!(p, "=" | "!" | "<" | ">") {
                        eq = Some(e);
                        break;
                    }
                }
            }
            let Some(eq) = eq else {
                k += 1;
                continue;
            };
            // Bound names: idents in the pattern, before any top-level `:`
            // type ascription, excluding keywords, `_` and variant/struct
            // names (capitalized).
            let mut names: Vec<String> = Vec::new();
            let mut group_depth = 0i32;
            let mut in_type = false;
            for p in k + 1..eq {
                let t = self.text_at(seq, p);
                match t {
                    "(" | "[" | "{" => group_depth += 1,
                    ")" | "]" | "}" => group_depth -= 1,
                    ":" if group_depth == 0 => in_type = true,
                    _ => {}
                }
                if in_type || !self.is_ident(seq, p) {
                    continue;
                }
                if KEYWORDS.contains(&t)
                    || t == "_"
                    || t.chars().next().is_some_and(|c| c.is_uppercase())
                {
                    continue;
                }
                names.push(t.to_string());
            }
            let line = self.line_at(seq, k);
            for n in &names {
                st.decl_scope.insert(n.clone(), depth);
                // A fresh binding shadows any taint the old one carried.
                st.sources.remove(n);
                // A re-`let` of a recycled provided-buffer id names a new
                // id (the reap loop's next CQE), not the dead one.
                for l in st.loans.iter_mut() {
                    if l.kind == LoanKind::Pbuf {
                        l.names.retain(|x| x != n);
                    }
                }
            }
            st.loans
                .retain(|l| !(l.kind == LoanKind::Pbuf && l.names.is_empty()));
            // RHS inspection.
            let mut rhs_sources: Vec<String> = Vec::new();
            let mut opens_pool = false;
            let mut opens_guard = false;
            let mut pool_alias: Option<usize> = None;
            for p in eq + 1..seq.len() {
                let t = self.text_at(seq, p);
                if t == "." {
                    let m = self.text_at(seq, p + 1);
                    if self.text_at(seq, p + 2) == "(" {
                        if m == "acquire" {
                            opens_pool = true;
                        } else if m == "lock" {
                            opens_guard = true;
                        }
                    }
                }
                if self.is_ident(seq, p) && !KEYWORDS.contains(&t) {
                    let prev = self.text_at(seq, p.wrapping_sub(1));
                    if prev != "." && prev != "::" {
                        if self.text_at(seq, p + 1) == "."
                            && PTR_SOURCES.contains(&self.text_at(seq, p + 2))
                            && self.text_at(seq, p + 3) == "("
                        {
                            rhs_sources.push(t.to_string());
                        }
                        if pool_alias.is_none() {
                            pool_alias = st
                                .loans
                                .iter()
                                .position(|l| {
                                    l.kind == LoanKind::Pool && l.names.iter().any(|n| n == t)
                                });
                        }
                    }
                }
            }
            if !names.is_empty() && !rhs_sources.is_empty() {
                for n in &names {
                    st.sources
                        .entry(n.clone())
                        .or_default()
                        .extend(rhs_sources.iter().cloned());
                }
            }
            if opens_pool && !names.is_empty() {
                let id = self.next_id;
                self.next_id += 1;
                st.loans.push(Loan {
                    id,
                    kind: LoanKind::Pool,
                    names: names.clone(),
                    line,
                    scope: depth,
                    lent: false,
                    closed: false,
                    released: false,
                    release_line: 0,
                    reported: false,
                });
            } else if let Some(li) = pool_alias {
                // `let Some((slot, base)) = grant` — the destructured names
                // refer to the same pool loan.
                for n in &names {
                    if !st.loans[li].names.contains(n) {
                        st.loans[li].names.push(n.clone());
                    }
                }
            }
            if opens_guard {
                if let Some(n) = names.first() {
                    st.guards.push(Guard {
                        name: n.clone(),
                        line,
                        scope: depth,
                        dropped: false,
                        reported: false,
                    });
                }
            }
            k = eq + 1;
        }
    }

    /// `let _ = <ring-fallible call>` — the error is silently dropped.
    /// Scans every `let _ =` in the flat sequence (block expressions
    /// flatten nested statements into their parent), bounded by the next
    /// `;` so only the initializer of that particular binding is searched.
    fn check_swallowed_let(&mut self, seq: &[usize], _st: &State) {
        let mut k = 0usize;
        while k + 2 < seq.len() {
            if !(self.text_at(seq, k) == "let"
                && self.is_ident(seq, k)
                && self.text_at(seq, k + 1) == "_"
                && self.text_at(seq, k + 2) == "=")
            {
                k += 1;
                continue;
            }
            let mut p = k + 3;
            while p < seq.len() && self.text_at(seq, p) != ";" {
                let t = self.text_at(seq, p);
                if self.is_ident(seq, p)
                    && RING_FALLIBLE.contains(&t)
                    && self.text_at(seq, p + 1) == "("
                {
                    let line = self.line_at(seq, p);
                    self.finding(
                        RULE_SWALLOWED,
                        line,
                        format!(
                            "`let _ = ..{t}(..)` discards a ring error; handle or propagate it"
                        ),
                    );
                    break;
                }
                p += 1;
            }
            k = p;
        }
    }

    /// Closes out a scope: drop-before-reap for local loans declared here,
    /// then purges bindings, loans and guards whose scope ended.
    fn end_scope(&mut self, st: &mut State, depth: usize) {
        let mut msgs = Vec::new();
        for l in st.loans.iter_mut() {
            if l.scope >= depth
                && l.kind == LoanKind::Local
                && l.lent
                && !l.closed
                && !l.reported
            {
                let name = l.names.first().cloned().unwrap_or_default();
                msgs.push((
                    l.line,
                    format!(
                        "buffer `{name}` is lent to the ring but goes out of scope before \
                         its completion is reaped; wait or drain on every path first"
                    ),
                ));
                l.reported = true;
            }
        }
        for (line, m) in msgs {
            self.finding(RULE_LOAN, line, m);
        }
        st.loans.retain(|l| l.scope < depth);
        st.guards.retain(|g| g.scope < depth);
        st.decl_scope.retain(|_, &mut s| s < depth);
    }
}

enum BranchBody<'t> {
    Block(&'t [Tree]),
    Arm(&'t [Tree]),
}

/// Resolves a binding through the taint map to the buffers its value
/// points into (itself, if untainted).
fn resolve_roots(st: &State, name: &str) -> Vec<String> {
    let mut roots = Vec::new();
    let mut queue = vec![name.to_string()];
    let mut seen = HashSet::new();
    while let Some(n) = queue.pop() {
        if !seen.insert(n.clone()) {
            continue;
        }
        match st.sources.get(&n) {
            Some(srcs) if !srcs.is_empty() => queue.extend(srcs.iter().cloned()),
            _ => roots.push(n),
        }
    }
    roots
}

/// Merges branch states back into the parent: a loan is closed only if
/// every path closed it; lent/released/reported if any path says so.
fn merge(parent: &mut State, branches: Vec<State>) {
    if branches.is_empty() {
        return;
    }
    let mut out: Vec<Loan> = Vec::new();
    for l in &parent.loans {
        let mut m = l.clone();
        let mut closed_all = true;
        let mut lent_any = false;
        let mut released_any = false;
        let mut reported_any = m.reported;
        let mut release_line = m.release_line;
        for b in &branches {
            match b.loans.iter().find(|x| x.id == l.id) {
                Some(bl) => {
                    closed_all &= bl.closed;
                    lent_any |= bl.lent;
                    released_any |= bl.released;
                    reported_any |= bl.reported;
                    if bl.release_line != 0 {
                        release_line = bl.release_line;
                    }
                    for n in &bl.names {
                        if !m.names.contains(n) {
                            m.names.push(n.clone());
                        }
                    }
                }
                // Purged inside the branch (scope ended there): the branch
                // saw the loan in its pre-branch state.
                None => {
                    closed_all &= l.closed;
                    lent_any |= l.lent;
                    released_any |= l.released;
                }
            }
        }
        m.closed = closed_all;
        m.lent = lent_any;
        m.released = released_any;
        m.reported = reported_any;
        m.release_line = release_line;
        out.push(m);
    }
    // Loans opened inside a branch on outer-scoped bindings survive it.
    for b in &branches {
        for bl in &b.loans {
            if !out.iter().any(|x| x.id == bl.id) {
                out.push(bl.clone());
            }
        }
    }
    parent.loans = out;

    let mut guards: Vec<Guard> = Vec::new();
    for g in &parent.guards {
        let mut m = g.clone();
        let mut dropped_all = true;
        let mut reported_any = m.reported;
        for b in &branches {
            match b
                .guards
                .iter()
                .find(|x| x.name == g.name && x.line == g.line)
            {
                Some(bg) => {
                    dropped_all &= bg.dropped;
                    reported_any |= bg.reported;
                }
                None => dropped_all &= g.dropped,
            }
        }
        m.dropped = dropped_all;
        m.reported = reported_any;
        guards.push(m);
    }
    for b in &branches {
        for bg in &b.guards {
            if !guards
                .iter()
                .any(|x| x.name == bg.name && x.line == bg.line)
            {
                guards.push(bg.clone());
            }
        }
    }
    parent.guards = guards;

    for b in branches {
        for (k, v) in b.decl_scope {
            parent.decl_scope.entry(k).or_insert(v);
        }
        for (k, v) in b.sources {
            let e = parent.sources.entry(k).or_default();
            for s in v {
                if !e.contains(&s) {
                    e.push(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let parsed = parse::parse(&lx.tokens);
        let skip = vec![false; lx.tokens.len()];
        analyze_file(&lx.tokens, &parsed, &skip)
    }

    fn rules_of(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn drop_before_reap_on_local_scratch() {
        let src = "fn f(ring: &mut Ring, fd: i32) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 4096];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 4096, 0, 1)? };\n\
                   ring.submit()?;\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert_eq!(fs[0].line, 3); // reported at the prepare call
        assert!(fs[0].message.contains("out of scope"));
    }

    #[test]
    fn reap_on_every_path_is_clean() {
        let src = "fn f(ring: &mut Ring, fd: i32) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 4096];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 4096, 0, 1)? };\n\
                   ring.submit()?;\n\
                   ring.wait_completion()?;\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn reap_on_one_branch_only_still_flags() {
        let src = "fn f(ring: &mut Ring, fd: i32, eager: bool) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 64];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   ring.submit()?;\n\
                   if eager {\n\
                   ring.wait_completion()?;\n\
                   }\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
    }

    #[test]
    fn reap_on_both_branches_is_clean() {
        let src = "fn f(ring: &mut Ring, fd: i32, eager: bool) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 64];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   ring.submit()?;\n\
                   if eager {\n\
                   ring.wait_completion()?;\n\
                   } else {\n\
                   ring.drain_completions()?;\n\
                   }\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn mutation_while_lent_flags() {
        let src = "fn f(ring: &mut Ring, fd: i32) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 64];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   buf.clear();\n\
                   ring.wait_completion()?;\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert_eq!(fs[0].line, 4);
        assert!(fs[0].message.contains("clear"));
    }

    #[test]
    fn param_buffer_never_scope_flagged_but_mutation_is() {
        let clean = "fn f(ring: &mut Ring, fd: i32, buf: &mut Vec<u8>) -> Result<(), E> {\n\
                     unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                     ring.submit()\n\
                     }";
        assert!(run(clean).is_empty(), "{:#?}", run(clean));
        let bad = "fn f(ring: &mut Ring, fd: i32, buf: &mut Vec<u8>) -> Result<(), E> {\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   buf.truncate(0);\n\
                   ring.wait_completion()\n\
                   }";
        let fs = run(bad);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
    }

    #[test]
    fn escape_into_struct_literal_closes_loan() {
        let src = "fn f(&mut self, fd: i32, mut buf: Vec<u8>) -> Result<(), E> {\n\
                   unsafe { self.ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   self.slots.insert(7, Slot { buf, remaining: 1 });\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn taint_through_iovec_vector_tracks_root() {
        let src = "fn f(&mut self) -> Result<(), E> {\n\
                   let mut bufs = make_bufs();\n\
                   let iovecs = bufs.iter_mut().map(|b| iovec(b)).collect();\n\
                   unsafe { self.ring.register_buffers(&iovecs)? };\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        // `bufs` goes out of scope still registered: drop-before-reap.
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert!(fs[0].message.contains("bufs"), "{fs:#?}");
    }

    #[test]
    fn taint_escape_into_pool_field_is_clean() {
        let src = "fn f(&mut self) -> Result<(), E> {\n\
                   let mut bufs = make_bufs();\n\
                   let iovecs = bufs.iter_mut().map(|b| iovec(b)).collect();\n\
                   unsafe { self.ring.register_buffers(&iovecs)? };\n\
                   self.fixed_bufs = Some(FixedBufPool { bufs, each_len: 64 });\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn pool_release_while_lent_flags_once() {
        let src = "fn f(&mut self, ring: &mut Ring, len: u32) -> Result<(), E> {\n\
                   let grant = self.pool.acquire(len as usize);\n\
                   if let Some((slot, base)) = grant {\n\
                   unsafe { ring.prepare_read_fixed_buf(0, base, len, 0, slot, 7)? };\n\
                   ring.submit()?;\n\
                   self.pool.release(slot);\n\
                   ring.wait_completion()?;\n\
                   }\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert_eq!(fs[0].line, 6);
        assert!(fs[0].message.contains("released while"), "{fs:#?}");
    }

    #[test]
    fn pool_release_after_reap_is_clean() {
        let src = "fn f(&mut self, ring: &mut Ring, len: u32) -> Result<(), E> {\n\
                   let grant = self.pool.acquire(len as usize);\n\
                   if let Some((slot, base)) = grant {\n\
                   unsafe { ring.prepare_read_fixed_buf(0, base, len, 0, slot, 7)? };\n\
                   ring.submit()?;\n\
                   ring.wait_completion()?;\n\
                   self.pool.release(slot);\n\
                   }\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn pool_use_after_release_flags() {
        let src = "fn f(&mut self, out: &mut Vec<u8>) {\n\
                   let grant = self.pool.acquire(64);\n\
                   if let Some((slot, base)) = grant {\n\
                   self.pool.release(slot);\n\
                   copy_from(base, out);\n\
                   }\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert!(fs[0].message.contains("after its pool slot was released"));
    }

    #[test]
    fn lock_guard_across_submit_flags() {
        let src = "fn f(ring: &mut Ring, m: &Mutex<u32>) -> Result<(), E> {\n\
                   let held = m.lock().unwrap();\n\
                   ring.submit_and_wait(1)?;\n\
                   drop(held);\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOCK_SUBMIT], "{fs:#?}");
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_submit_is_clean() {
        let src = "fn f(ring: &mut Ring, m: &Mutex<u32>) -> Result<(), E> {\n\
                   let held = m.lock().unwrap();\n\
                   drop(held);\n\
                   ring.submit_and_wait(1)?;\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn guard_scoped_block_before_submit_is_clean() {
        let src = "fn f(ring: &mut Ring, m: &Mutex<u32>) -> Result<(), E> {\n\
                   {\n\
                   let held = m.lock().unwrap();\n\
                   *held += 1;\n\
                   }\n\
                   ring.submit_and_wait(1)?;\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn same_statement_lock_and_submit_flags() {
        let src = "fn f(ring: &mut Ring, m: &Mutex<u32>) -> Result<(), E> {\n\
                   submit_locked(m.lock().unwrap(), ring.submit()?);\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOCK_SUBMIT], "{fs:#?}");
    }

    #[test]
    fn swallowed_let_underscore_flags() {
        let src = "fn f(ring: &mut Ring) {\n\
                   let _ = ring.submit();\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_SWALLOWED], "{fs:#?}");
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn swallowed_let_nested_in_expression_match_flags() {
        // The discard sits inside a match arm of an expression-position
        // match, so the *statement* starts with `let reader`, not `let _`.
        let src = "fn f(engine: Kind, r: &mut Ring) {\n\
                   let reader: Box<dyn GroupReader> = match engine {\n\
                   Kind::Uring => {\n\
                   let _ = r.register_file();\n\
                   Box::new(make(r))\n\
                   }\n\
                   Kind::Mmap => Box::new(other()),\n\
                   };\n\
                   use_reader(reader);\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_SWALLOWED], "{fs:#?}");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn swallowed_ok_flags() {
        let src = "fn f(ring: &mut Ring) {\n\
                   ring.wait_completion().ok();\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_SWALLOWED], "{fs:#?}");
    }

    #[test]
    fn handled_results_are_clean() {
        let src = "fn f(ring: &mut Ring) -> Result<(), E> {\n\
                   if ring.submit().is_err() { recover(); }\n\
                   let n = ring.wait_completion()?;\n\
                   let _ = n;\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn match_arms_merge_like_branches() {
        let src = "fn f(ring: &mut Ring, fd: i32, mode: Mode) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 64];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   match mode {\n\
                   Mode::Eager => { ring.wait_completion()?; },\n\
                   Mode::Lazy => { flag(); },\n\
                   }\n\
                   Ok(())\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        let all_armed = "fn f(ring: &mut Ring, fd: i32, mode: Mode) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 64];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   match mode {\n\
                   Mode::Eager => { ring.wait_completion()?; },\n\
                   Mode::Lazy => { ring.drain_completions()?; },\n\
                   }\n\
                   Ok(())\n\
                   }";
        assert!(run(all_armed).is_empty(), "{:#?}", run(all_armed));
    }

    #[test]
    fn reap_inside_loop_counts() {
        let src = "fn f(ring: &mut Ring, fd: i32, n: usize) -> Result<(), E> {\n\
                   let mut buf = vec![0u8; 64];\n\
                   unsafe { ring.prepare_read(fd, buf.as_mut_ptr(), 64, 0, 1)? };\n\
                   while ring.in_flight() > 0 {\n\
                   ring.drain_completions()?;\n\
                   }\n\
                   Ok(())\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn cfg_test_functions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn f(ring: &mut Ring) { let _ = ring.submit(); }\n\
                   }";
        let lx = lex(src);
        let parsed = parse::parse(&lx.tokens);
        // Mask everything, as rules.rs does for cfg(test) mods.
        let skip = vec![true; lx.tokens.len()];
        assert!(analyze_file(&lx.tokens, &parsed, &skip).is_empty());
    }

    #[test]
    fn prepare_wrappers_do_not_self_flag() {
        // The Ring's own prepare_* methods take raw pointer params and hand
        // them to push_sqe; no loan obligations inside the wrapper itself.
        let src = "pub unsafe fn prepare_read(&mut self, fd: i32, buf: *mut u8, len: u32) -> Result<(), E> {\n\
                   self.push_sqe(op_read(fd, buf as u64, len))\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn pbuf_copy_after_recycle_flags() {
        let src = "fn f(ring: &mut Ring, out: &mut [u8]) {\n\
                   let bid = extract(flags);\n\
                   ring.buf_ring_recycle(bid);\n\
                   let _n = ring.buf_ring_copy(bid, 64, out);\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert!(fs[0].message.contains("after being recycled"), "{fs:#?}");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn pbuf_double_recycle_flags() {
        let src = "fn f(ring: &mut Ring) {\n\
                   let bid = extract(flags);\n\
                   ring.buf_ring_recycle(bid);\n\
                   ring.buf_ring_recycle(bid);\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert!(fs[0].message.contains("twice"), "{fs:#?}");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn pbuf_copy_before_recycle_is_clean() {
        let src = "fn f(ring: &mut Ring, out: &mut [u8]) {\n\
                   let bid = extract(flags);\n\
                   let _n = ring.buf_ring_copy(bid, 64, out);\n\
                   ring.buf_ring_recycle(bid);\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn pbuf_re_let_of_recycled_id_names_a_fresh_buffer() {
        // The reap loop's next CQE re-`let`s `bid`: that is a new id, not
        // a use of the recycled one.
        let src = "fn f(ring: &mut Ring, out: &mut [u8]) {\n\
                   let bid = extract(first);\n\
                   ring.buf_ring_recycle(bid);\n\
                   let bid = extract(second);\n\
                   let _n = ring.buf_ring_copy(bid, 64, out);\n\
                   ring.buf_ring_recycle(bid);\n\
                   }";
        assert!(run(src).is_empty(), "{:#?}", run(src));
    }

    #[test]
    fn pbuf_recycle_only_on_one_branch_then_use_flags() {
        // Merge semantics: recycled on any path means later uses race the
        // kernel's refill on that path.
        let src = "fn f(ring: &mut Ring, out: &mut [u8], partial: bool) {\n\
                   let bid = extract(flags);\n\
                   if partial {\n\
                   ring.buf_ring_recycle(bid);\n\
                   }\n\
                   let _n = ring.buf_ring_copy(bid, 64, out);\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_LOAN], "{fs:#?}");
        assert!(fs[0].message.contains("after being recycled"), "{fs:#?}");
    }

    #[test]
    fn prepare_read_select_swallowed_ok_flags() {
        let src = "fn f(ring: &mut Ring, fd: i32) {\n\
                   ring.prepare_read_select(fd, false, 64, 0, 7).ok();\n\
                   }";
        let fs = run(src);
        assert_eq!(rules_of(&fs), [RULE_SWALLOWED], "{fs:#?}");
    }
}
