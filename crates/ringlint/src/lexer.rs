//! A small Rust lexer: enough syntax awareness to lint token streams
//! without rustc internals (so ringlint builds on stable, offline).
//!
//! The lexer produces a flat token list (identifiers, punctuation,
//! literals) with 1-based line numbers, plus the per-line comment text the
//! rules need for `SAFETY:` audits and `ringlint: allow(..)` exemptions.
//! Strings, raw strings, byte strings, char literals and both comment
//! styles (including nested block comments) are consumed correctly so that
//! rule patterns never match inside literal or comment text.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `(`, `[`, `#`, ...). Multi-char
    /// operators are emitted as single chars except `::` and `..`, which
    /// the rules need as units.
    Punct,
    /// Numeric, string, char or byte literal (text not preserved for
    /// strings; a placeholder is stored instead).
    Literal,
    /// Lifetime such as `'a`.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (strings collapse to `""`).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A comment with its position: `//`, `///`, `//!` or block body text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text including the leading `//` / `/*`.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in order.
    pub tokens: Vec<Tok>,
    /// All comments in order.
    pub comments: Vec<Comment>,
    /// For each 1-based line: does any non-comment token start there?
    pub line_has_code: Vec<bool>,
}

impl Lexed {
    /// Comments that start on `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }

    /// Whether any non-comment token starts on `line`.
    pub fn has_code_on(&self, line: u32) -> bool {
        self.line_has_code
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let total_lines = src.lines().count() + 2;
    out.line_has_code = vec![false; total_lines];
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push_tok = |out: &mut Lexed, kind: TokKind, text: String, line: u32| {
        if let Some(slot) = out.line_has_code.get_mut(line as usize) {
            *slot = true;
        }
        out.tokens.push(Tok { kind, text, line });
    };

    while i < bytes.len() {
        // `i` is always a char boundary: every branch advances by whole
        // chars, and string/comment scans stop at ASCII delimiters (which
        // never appear as UTF-8 continuation bytes).
        let c = match src[i..].chars().next() {
            Some(c) => c,
            None => break,
        };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += c.len_utf8(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (also doc comments).
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested per Rust rules.
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i.min(src.len())].to_string(),
                });
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
                push_tok(&mut out, TokKind::Literal, String::from("\"\""), line);
            }
            'r' | 'b' if is_raw_or_byte_string(bytes, i) => {
                let l0 = line;
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                push_tok(&mut out, TokKind::Literal, String::from("\"\""), l0);
            }
            '\'' => {
                // Lifetime vs char literal. Lifetime identifiers in this
                // workspace are ASCII; a non-ASCII char after `'` is a
                // char literal.
                let next = bytes.get(i + 1).copied().unwrap_or(0) as char;
                let after = bytes.get(i + 2).copied().unwrap_or(0) as char;
                if (next.is_ascii_alphabetic() || next == '_') && after != '\'' {
                    // Lifetime.
                    let start = i;
                    i += 1;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    push_tok(
                        &mut out,
                        TokKind::Lifetime,
                        src[start..i].to_string(),
                        line,
                    );
                } else {
                    // Char literal: handle escapes.
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'\\' {
                        i += 2;
                        // Skip the rest of unicode escapes like \u{1F600}.
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        while i < bytes.len() && bytes[i] != b'\'' {
                            if bytes[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    i += 1; // closing quote
                    push_tok(&mut out, TokKind::Literal, String::from("''"), line);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = match src[i..].chars().next() {
                        Some(ch) => ch,
                        None => break,
                    };
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                push_tok(&mut out, TokKind::Ident, src[start..i].to_string(), line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    // Stop a number's `.` from eating `..` or a method call.
                    if bytes[i] == b'.'
                        && (bytes.get(i + 1) == Some(&b'.')
                            || bytes
                                .get(i + 1)
                                .is_some_and(|&b| (b as char).is_alphabetic() || b == b'_'))
                    {
                        break;
                    }
                    i += 1;
                }
                push_tok(&mut out, TokKind::Literal, src[start..i].to_string(), line);
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                push_tok(&mut out, TokKind::Punct, String::from("::"), line);
                i += 2;
            }
            '.' if bytes.get(i + 1) == Some(&b'.') => {
                // `..`, `..=`, `...` all start with `..`; emit as one token.
                let len = if bytes.get(i + 2) == Some(&b'=') || bytes.get(i + 2) == Some(&b'.') {
                    3
                } else {
                    2
                };
                push_tok(&mut out, TokKind::Punct, src[i..i + len].to_string(), line);
                i += len;
            }
            _ => {
                push_tok(&mut out, TokKind::Punct, c.to_string(), line);
                i += c.len_utf8();
            }
        }
    }
    out
}

fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // r"..", r#".."#, b"..", br"..", rb? (rb is not valid Rust; br is)
    let c = bytes[i];
    if c == b'r' {
        matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
            && raw_hashes_then_quote(bytes, i + 1)
    } else if c == b'b' {
        match bytes.get(i + 1) {
            Some(&b'"') => true,
            Some(&b'r') => raw_hashes_then_quote(bytes, i + 2),
            _ => false,
        }
    } else {
        false
    }
}

fn raw_hashes_then_quote(bytes: &[u8], mut i: usize) -> bool {
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    bytes.get(i) == Some(&b'"')
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    // Skip the prefix letters.
    let mut raw = false;
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        raw |= bytes[i] == b'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    if !raw {
        // Plain byte string: escapes apply.
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    // Raw string: ends at `"` followed by `hashes` hashes.
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0;
            while h < hashes && bytes.get(j) == Some(&b'#') {
                j += 1;
                h += 1;
            }
            if h == hashes {
                return j;
            }
        }
        if bytes[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            texts("fn main() { x.unwrap(); }"),
            ["fn", "main", "(", ")", "{", "x", ".", "unwrap", "(", ")", ";", "}"]
        );
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// SAFETY: fine\nunsafe { }\n/* block\ncomment */ x");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("SAFETY"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 3);
        let toks: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(toks, ["unsafe", "{", "}", "x"]);
        // x is on line 4 (block comment spans 3..4).
        assert_eq!(l.tokens[3].line, 4);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let l = lex(r#"let s = "Mutex::new() // not a comment"; y"#);
        assert!(l.comments.is_empty());
        assert!(!l.tokens.iter().any(|t| t.text == "Mutex"));
        assert!(l.tokens.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r###"let s = r#"has "quotes" and Mutex"#; z"###);
        assert!(!l.tokens.iter().any(|t| t.text == "Mutex"));
        assert!(l.tokens.iter().any(|t| t.text == "z"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.text == "''").count(),
            2
        );
    }

    #[test]
    fn double_colon_and_dotdot_are_units() {
        assert!(texts("Ordering::Relaxed").contains(&"::".to_string()));
        assert!(texts("&buf[a..b]").contains(&"..".to_string()));
        assert!(texts("0..=n").contains(&"..=".to_string()));
    }

    #[test]
    fn float_literal_does_not_eat_range() {
        let t = texts("1.5 + x.len() + (0..4)");
        assert!(t.contains(&"1.5".to_string()));
        assert!(t.contains(&"len".to_string()));
        assert!(t.contains(&"..".to_string()));
    }

    #[test]
    fn line_numbers_advance_in_multiline_strings() {
        let l = lex("let a = \"x\ny\nz\";\nfinal_tok");
        let f = l.tokens.iter().find(|t| t.text == "final_tok").unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn line_has_code_tracks_comment_only_lines() {
        let l = lex("let a = 1;\n// only a comment\nlet b = 2;");
        assert!(l.has_code_on(1));
        assert!(!l.has_code_on(2));
        assert!(l.has_code_on(3));
    }
}
