//! Diagnostic types and output formatting (text + machine-readable JSON).

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable rule name, e.g. `panic-free-hot-path`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// `file:line rule message` — the text diagnostic format.
    pub fn render(&self) -> String {
        format!("{}:{} [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Aggregate result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of would-be violations suppressed by `ringlint: allow(..)`.
    pub allowed: usize,
}

impl Report {
    /// Sorts violations into the stable reporting order.
    pub fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Per-rule violation counts in rule-declaration order, followed by
    /// the `stale-allow` hygiene count.
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        crate::rules::ALL_RULES
            .iter()
            .copied()
            .chain(std::iter::once(crate::rules::RULE_STALE))
            .map(|r| (r, self.violations.iter().filter(|v| v.rule == r).count()))
            .collect()
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "ringlint: {} file(s) scanned, {} violation(s), {} allowed\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed
        ));
        out
    }

    /// Machine-readable JSON report (hand-rolled; no serde offline).
    ///
    /// Schema history: v2 renamed `version` to `schema_version`, added the
    /// dataflow rules and `stale-allow` to `counts`; v1 covered the five
    /// token rules only.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"schema_version\":2,");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"allowed\":{},", self.allowed));
        out.push_str("\"counts\":{");
        let counts = self.counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{rule}\":{n}"));
        }
        out.push_str("},\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(v.rule),
                json_escape(&v.file),
                v.line,
                json_escape(&v.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_json_shape() {
        let mut r = Report {
            files_scanned: 2,
            violations: vec![Violation {
                rule: "unsafe-audit",
                file: "crates/io/src/ring.rs".into(),
                line: 10,
                message: "m".into(),
            }],
            allowed: 1,
        };
        r.finish();
        let j = r.to_json();
        assert!(j.starts_with("{\"schema_version\":2,"));
        assert!(j.contains("\"files_scanned\":2"));
        assert!(j.contains("\"allowed\":1"));
        assert!(j.contains("\"unsafe-audit\":1"));
        assert!(j.contains("\"line\":10"));
        // v2 counts cover the dataflow rules and exemption hygiene.
        for rule in ["buffer-loan", "lock-across-submit", "swallowed-ring-error", "stale-allow"] {
            assert!(j.contains(&format!("\"{rule}\":0")), "missing {rule} in {j}");
        }
    }

    #[test]
    fn violations_sorted() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "b-rule",
            file: "b.rs".into(),
            line: 2,
            message: String::new(),
        });
        r.violations.push(Violation {
            rule: "a-rule",
            file: "a.rs".into(),
            line: 9,
            message: String::new(),
        });
        r.finish();
        assert_eq!(r.violations[0].file, "a.rs");
    }
}
