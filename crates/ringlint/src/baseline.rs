//! Baseline diff mode.
//!
//! `--baseline FILE` compares the current run against a committed snapshot
//! so CI fails only on *new* violations: pre-existing, triaged findings are
//! grandfathered until someone fixes them, while fresh regressions break
//! the build immediately. Two deliberate asymmetries:
//!
//! * Matching ignores line numbers. A baselined violation is identified by
//!   `(rule, file, message)` as a **multiset** — unrelated edits that shift
//!   a finding up or down a few lines do not un-grandfather it, but adding
//!   a *second* identical finding in the same file does fail the gate.
//! * `stale-allow` findings are never grandfathered and never written into
//!   a baseline. A stale exemption is a one-line deletion; letting it ride
//!   in a baseline would defeat the hygiene rule entirely.
//!
//! The file format is deliberately tiny (`schema_version` 2, matching the
//! report JSON):
//!
//! ```json
//! {"schema_version":2,"violations":[
//!   {"rule":"buffer-loan","file":"crates/io/src/x.rs","message":"..."}]}
//! ```
//!
//! Parsing is hand-rolled (no serde offline) but escape-complete for
//! everything [`crate::diag::json_escape`] can emit, plus `\uXXXX`.

use crate::diag::{json_escape, Report, Violation};
use crate::rules::RULE_STALE;
use std::collections::HashMap;

/// Schema version written by [`render`] and accepted by [`parse`].
pub const BASELINE_SCHEMA_VERSION: u64 = 2;

/// A baselined violation identity: everything but the line number.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Rule name, e.g. `buffer-loan`.
    pub rule: String,
    /// Workspace-relative forward-slash path.
    pub file: String,
    /// The full diagnostic message.
    pub message: String,
}

/// Renders the baseline JSON for a report's current violations
/// (`--update-baseline`). `stale-allow` findings are excluded: they must be
/// fixed, not recorded.
pub fn render(report: &Report) -> String {
    let mut entries: Vec<Entry> = report
        .violations
        .iter()
        .filter(|v| v.rule != RULE_STALE)
        .map(|v| Entry {
            rule: v.rule.to_string(),
            file: v.file.clone(),
            message: v.message.clone(),
        })
        .collect();
    entries.sort();
    let mut out = format!("{{\"schema_version\":{BASELINE_SCHEMA_VERSION},\"violations\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"file\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&e.rule),
            json_escape(&e.file),
            json_escape(&e.message)
        ));
    }
    if !entries.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Violations in `report` that are not covered by `baseline`.
///
/// Multiset semantics: each baseline entry absorbs at most one current
/// violation with the same `(rule, file, message)`. `stale-allow` findings
/// are always returned as new.
pub fn new_violations(report: &Report, baseline: &[Entry]) -> Vec<Violation> {
    let mut budget: HashMap<(&str, &str, &str), usize> = HashMap::new();
    for e in baseline {
        *budget
            .entry((e.rule.as_str(), e.file.as_str(), e.message.as_str()))
            .or_default() += 1;
    }
    report
        .violations
        .iter()
        .filter(|v| {
            if v.rule == RULE_STALE {
                return true;
            }
            match budget.get_mut(&(v.rule, v.file.as_str(), v.message.as_str())) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            }
        })
        .cloned()
        .collect()
}

/// Parses a baseline file. Tolerates an optional `line` field per entry
/// (older snapshots) and unknown top-level keys; rejects a
/// `schema_version` newer than [`BASELINE_SCHEMA_VERSION`].
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    p.ws();
    p.expect(b'{')?;
    let mut entries = Vec::new();
    loop {
        p.ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "schema_version" => {
                let v = p.number()?;
                if v > BASELINE_SCHEMA_VERSION {
                    return Err(format!(
                        "baseline schema_version {v} is newer than supported \
                         {BASELINE_SCHEMA_VERSION}; regenerate with --update-baseline"
                    ));
                }
            }
            "violations" => {
                p.expect(b'[')?;
                loop {
                    p.ws();
                    if p.eat(b']') {
                        break;
                    }
                    entries.push(p.entry()?);
                    p.ws();
                    if !p.eat(b',') {
                        p.ws();
                        p.expect(b']')?;
                        break;
                    }
                }
            }
            _ => p.skip_value()?,
        }
        p.ws();
        if !p.eat(b',') {
            p.ws();
            p.expect(b'}')?;
            break;
        }
    }
    Ok(entries)
}

/// Minimal cursor over the baseline's JSON subset.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected `{}`",
                self.i, c as char
            ))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.i < self.b.len() && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'-')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("baseline parse error at byte {start}: expected a number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = *self
                        .b
                        .get(self.i)
                        .ok_or("baseline parse error: truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("baseline parse error: bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err("baseline parse error: unknown escape".into()),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "baseline parse error: invalid UTF-8")?;
                    let c = rest.chars().next().ok_or("baseline parse error: EOF")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
        Err("baseline parse error: unterminated string".into())
    }

    /// Parses one `{"rule":..,"file":..,"message":..}` object.
    fn entry(&mut self) -> Result<Entry, String> {
        self.ws();
        self.expect(b'{')?;
        let (mut rule, mut file, mut message) = (None, None, None);
        loop {
            self.ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                "file" => file = Some(self.string()?),
                "message" => message = Some(self.string()?),
                _ => self.skip_value()?,
            }
            self.ws();
            if !self.eat(b',') {
                self.ws();
                self.expect(b'}')?;
                break;
            }
        }
        match (rule, file, message) {
            (Some(rule), Some(file), Some(message)) => Ok(Entry { rule, file, message }),
            _ => Err("baseline entry missing rule/file/message".into()),
        }
    }

    /// Skips any scalar value (string or number/keyword) — used for
    /// unknown keys so old or extended baselines still parse.
    fn skip_value(&mut self) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == b'"' {
            self.string().map(|_| ())
        } else {
            while self.i < self.b.len()
                && !matches!(self.b[self.i], b',' | b'}' | b']')
            {
                self.i += 1;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: u32, message: &str) -> Violation {
        Violation { rule, file: file.into(), line, message: message.into() }
    }

    fn report(violations: Vec<Violation>) -> Report {
        let mut r = Report { files_scanned: 1, violations, allowed: 0 };
        r.finish();
        r
    }

    #[test]
    fn render_then_parse_round_trips() {
        let r = report(vec![
            v("buffer-loan", "crates/io/src/a.rs", 10, "msg \"quoted\" and \\slash"),
            v("swallowed-ring-error", "crates/core/src/b.rs", 3, "line\nbreak"),
        ]);
        let text = render(&r);
        let entries = parse(&text).expect("parse");
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.message == "msg \"quoted\" and \\slash"));
        assert!(entries.iter().any(|e| e.message == "line\nbreak"));
        // Round-tripped baseline grandfathers everything.
        assert!(new_violations(&r, &entries).is_empty());
    }

    #[test]
    fn line_shift_stays_grandfathered_but_duplicates_do_not() {
        let old = report(vec![v("buffer-loan", "a.rs", 10, "m")]);
        let entries = parse(&render(&old)).unwrap();
        // Same finding, different line: covered.
        let shifted = report(vec![v("buffer-loan", "a.rs", 99, "m")]);
        assert!(new_violations(&shifted, &entries).is_empty());
        // A second identical finding exhausts the multiset budget.
        let doubled = report(vec![
            v("buffer-loan", "a.rs", 10, "m"),
            v("buffer-loan", "a.rs", 99, "m"),
        ]);
        assert_eq!(new_violations(&doubled, &entries).len(), 1);
    }

    #[test]
    fn stale_allow_is_never_grandfathered() {
        let r = report(vec![v(crate::rules::RULE_STALE, "a.rs", 5, "stale")]);
        // Not written out...
        let text = render(&r);
        assert!(parse(&text).unwrap().is_empty());
        // ...and always new even if someone hand-edits one in.
        let entries = vec![Entry {
            rule: crate::rules::RULE_STALE.into(),
            file: "a.rs".into(),
            message: "stale".into(),
        }];
        assert_eq!(new_violations(&r, &entries).len(), 1);
    }

    #[test]
    fn tolerates_line_fields_and_unknown_keys() {
        let text = "{\"schema_version\":1,\"generator\":\"x\",\"violations\":[\n\
                    {\"rule\":\"r\",\"file\":\"f.rs\",\"line\":7,\"message\":\"m\"}]}";
        let entries = parse(text).expect("parse");
        assert_eq!(entries, vec![Entry { rule: "r".into(), file: "f.rs".into(), message: "m".into() }]);
    }

    #[test]
    fn rejects_future_schema() {
        let err = parse("{\"schema_version\":99,\"violations\":[]}").unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
    }

    #[test]
    fn empty_baseline_marks_everything_new() {
        let r = report(vec![v("buffer-loan", "a.rs", 1, "m")]);
        let entries = parse("{\"schema_version\":2,\"violations\":[]}").unwrap();
        assert_eq!(new_violations(&r, &entries).len(), 1);
    }
}
