//! ringlint: workspace static analysis enforcing RingSampler's safety and
//! sync-free invariants.
//!
//! The paper's performance claims rest on structural properties that the
//! type system cannot express: workers never synchronize on the hot path
//! (§3.1), the io_uring pipeline never blocks in a syscall (Fig. 3b), ring
//! atomics follow the kernel's acquire/release protocol, hot-path code
//! never panics, and every `unsafe` site carries a written justification.
//! ringlint lexes each workspace source file (stable toolchain, no rustc
//! internals) and enforces those invariants with `file:line` diagnostics,
//! a `--json` mode, and per-site
//! `// ringlint: allow(<rule>) — <reason>` exemptions.
//!
//! On top of the token rules, a token-tree parser ([`parse`]) and an
//! intra-function dataflow pass ([`dataflow`]) track the io_uring
//! buffer-loan lifecycle: pointers lent to the kernel at SQE preparation
//! must stay alive and unaliased until the completion is reaped, lock
//! guards must not be live across ring entry, and ring errors must not be
//! silently discarded. Stale `allow(..)` comments are reported so
//! exemptions cannot rot, and `--baseline` diffs a run against a committed
//! baseline so CI fails only on *new* violations.
//!
//! Run it with `cargo run -p ringlint`; it exits non-zero on violations.

pub mod baseline;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::{Report, Violation};
pub use rules::{lint_source, FileOutcome};

/// Directories under the workspace root that contain lintable sources.
const SCAN_ROOTS: &[&str] = &["crates", "vendor", "tests"];

/// Collects every scannable `.rs` file under the workspace root, returned
/// as sorted workspace-relative forward-slash paths.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if let Some(rel) = relative_slash(&path, root) {
            if config::is_scanned(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` with forward slashes.
fn relative_slash(path: &Path, root: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    Some(s)
}

/// Lints an explicit set of workspace-relative files under `root`.
pub fn lint_files(root: &Path, rels: &[String]) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in rels {
        let src = fs::read_to_string(root.join(rel))?;
        let outcome = rules::lint_source(rel, &src);
        report.files_scanned += 1;
        report.allowed += outcome.allowed;
        report.violations.extend(outcome.violations);
    }
    report.finish();
    Ok(report)
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = collect_workspace_files(root)?;
    lint_files(root, &files)
}

/// Locates the workspace root: an explicit `--root`, else the nearest
/// ancestor of `start` whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_root_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn collects_rs_files_excluding_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = collect_workspace_files(&root).expect("walk");
        assert!(files.iter().any(|f| f == "crates/io/src/ring.rs"));
        assert!(files.iter().all(|f| !f.contains("/fixtures/")));
        assert!(files.iter().all(|f| f.ends_with(".rs")));
    }
}
