//! Dataset catalog mirroring the paper's Table 1.
//!
//! Each entry preserves the original |E|/|V| ratio and degree-skew class at
//! a configurable down-scale (see DESIGN.md, substitution table). Scale 1
//! would regenerate the full paper sizes (1.6–8.2 B edges); the default
//! scale of 400 produces graphs that exercise the identical code paths in
//! minutes on a workstation.

use std::path::{Path, PathBuf};

use crate::edgefile::OnDiskGraph;
use crate::error::Result;
use crate::gen::GeneratorSpec;
use crate::preprocess::{build_dataset, PreprocessOptions};

/// Identifies one of the paper's four evaluation graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// ogbn-papers100M: citation graph, 111 M nodes / 1.6 B edges.
    OgbnPapers,
    /// Friendster: social graph, 65 M nodes / 3.6 B edges.
    Friendster,
    /// Yahoo WebScope: web graph, 1.4 B nodes / 6.6 B edges.
    Yahoo,
    /// Graph500 Kronecker synthetic, 134 M nodes / 8.2 B edges.
    Synthetic,
}

impl DatasetId {
    /// All four datasets, in Table-1 order.
    pub const ALL: [DatasetId; 4] = [
        DatasetId::OgbnPapers,
        DatasetId::Friendster,
        DatasetId::Yahoo,
        DatasetId::Synthetic,
    ];

    /// The paper's name for the dataset.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::OgbnPapers => "ogbn-papers",
            DatasetId::Friendster => "Friendster",
            DatasetId::Yahoo => "Yahoo",
            DatasetId::Synthetic => "Synthetic",
        }
    }

    /// Paper-scale node count (Table 1).
    pub fn paper_nodes(self) -> u64 {
        match self {
            DatasetId::OgbnPapers => 111_000_000,
            DatasetId::Friendster => 65_000_000,
            DatasetId::Yahoo => 1_400_000_000,
            DatasetId::Synthetic => 134_000_000,
        }
    }

    /// Paper-scale edge count (Table 1).
    pub fn paper_edges(self) -> u64 {
        match self {
            DatasetId::OgbnPapers => 1_600_000_000,
            DatasetId::Friendster => 3_600_000_000,
            DatasetId::Yahoo => 6_600_000_000,
            DatasetId::Synthetic => 8_200_000_000,
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete, scaled instantiation of a Table-1 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which paper dataset this models.
    pub id: DatasetId,
    /// Down-scale divisor applied to paper sizes (1 = full scale).
    pub scale: u64,
    /// Generator reproducing the dataset's degree-skew class.
    pub generator: GeneratorSpec,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Builds the spec for `id` at down-scale `scale` (≥ 1).
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn scaled(id: DatasetId, scale: u64) -> Self {
        assert!(scale > 0, "scale must be >= 1");
        let nodes = (id.paper_nodes() / scale).max(1024);
        let edges = (id.paper_edges() / scale).max(4096);
        let generator = match id {
            // Citation graph: moderately skewed in-degree.
            DatasetId::OgbnPapers => GeneratorSpec::PowerLaw {
                nodes,
                edges,
                exponent: 0.7,
            },
            // Social graph: denser (avg degree ~55), skewed.
            DatasetId::Friendster => GeneratorSpec::PowerLaw {
                nodes,
                edges,
                exponent: 0.6,
            },
            // Web graph: very skewed, sparse per-node average.
            DatasetId::Yahoo => GeneratorSpec::PowerLaw {
                nodes,
                edges,
                exponent: 0.9,
            },
            // Graph500 Kronecker.
            DatasetId::Synthetic => {
                let scale_bits = 64 - (nodes.max(2) - 1).leading_zeros();
                GeneratorSpec::Rmat {
                    scale: scale_bits,
                    edges,
                }
            }
        };
        Self {
            id,
            scale,
            generator,
            seed: 0xC0FFEE ^ id as u64,
        }
    }

    /// Node count of the scaled dataset.
    pub fn num_nodes(&self) -> u64 {
        self.generator.num_nodes()
    }

    /// Edge count of the scaled dataset.
    pub fn num_edges(&self) -> u64 {
        self.generator.num_edges()
    }

    /// File-system base path (without extension) under `dir`.
    pub fn base_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!(
            "{}-s{}",
            self.id.name().to_lowercase().replace(' ', "-"),
            self.scale
        ))
    }

    /// Generates (or reuses) the on-disk edge file + offset index in `dir`.
    ///
    /// Regeneration is skipped when a valid pair already exists with the
    /// expected edge count, so repeated experiment runs are cheap.
    ///
    /// # Errors
    /// Propagates generation/preprocessing I/O errors.
    pub fn materialize(&self, dir: &Path) -> Result<OnDiskGraph> {
        std::fs::create_dir_all(dir).map_err(|e| crate::error::GraphError::io_at(dir, e))?;
        let base = self.base_path(dir);
        if let Ok(existing) = OnDiskGraph::open(&base) {
            if existing.num_edges() == self.num_edges() && existing.num_nodes() == self.num_nodes()
            {
                return Ok(existing);
            }
        }
        build_dataset(
            self.num_nodes(),
            self.generator.stream(self.seed),
            &base,
            &PreprocessOptions::default(),
        )
    }
}

/// Reads the global down-scale divisor from `RS_SCALE` (default 400).
pub fn env_scale() -> u64 {
    std::env::var("RS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(400)
}

/// The full Table-1 catalog at down-scale `scale`.
pub fn catalog(scale: u64) -> Vec<DatasetSpec> {
    DatasetId::ALL
        .iter()
        .map(|&id| DatasetSpec::scaled(id, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_preserved() {
        for id in DatasetId::ALL {
            let spec = DatasetSpec::scaled(id, 1000);
            let paper_ratio = id.paper_edges() as f64 / id.paper_nodes() as f64;
            let scaled_ratio = spec.num_edges() as f64 / spec.num_nodes() as f64;
            // RMAT rounds nodes to a power of two; allow slack.
            assert!(
                (scaled_ratio / paper_ratio).abs() > 0.4
                    && (scaled_ratio / paper_ratio).abs() < 2.5,
                "{id}: ratio {scaled_ratio} vs paper {paper_ratio}"
            );
        }
    }

    #[test]
    fn materialize_and_reuse() {
        let dir = std::env::temp_dir().join(format!("rs-datasets-{}", std::process::id()));
        let spec = DatasetSpec::scaled(DatasetId::OgbnPapers, 100_000);
        let g1 = spec.materialize(&dir).unwrap();
        let g2 = spec.materialize(&dir).unwrap(); // reuse path
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.num_nodes(), spec.num_nodes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn catalog_graphs_are_heavy_tailed() {
        // Every Table-1 stand-in must carry the degree-skew class of its
        // real counterpart (the property the paper's analysis rests on).
        let dir = std::env::temp_dir().join(format!("rs-datasets-ht-{}", std::process::id()));
        for spec in catalog(20_000) {
            let g = spec.materialize(&dir).unwrap();
            let dd = crate::stats::DegreeDistribution::from_graph(&g);
            assert!(
                dd.is_heavy_tailed(),
                "{} not heavy-tailed: slope {:?}",
                spec.id,
                dd.loglog_slope()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn catalog_has_all_four() {
        let c = catalog(500);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].id, DatasetId::OgbnPapers);
        assert_eq!(c[3].id, DatasetId::Synthetic);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(DatasetId::OgbnPapers.to_string(), "ogbn-papers");
        assert_eq!(DatasetId::Yahoo.to_string(), "Yahoo");
    }

    #[test]
    fn minimum_sizes_enforced() {
        let spec = DatasetSpec::scaled(DatasetId::OgbnPapers, u64::MAX);
        assert!(spec.num_nodes() >= 1024);
        assert!(spec.num_edges() >= 4096);
    }

    #[test]
    fn env_scale_default() {
        // Note: cannot set env vars safely in parallel tests; just check
        // the default path when unset or garbage.
        if std::env::var("RS_SCALE").is_err() {
            assert_eq!(env_scale(), 400);
        }
    }
}
