//! Error types for the graph storage substrate.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors produced by graph construction, storage, and preprocessing.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// Underlying file I/O failure.
    Io {
        /// The file involved, when known.
        path: Option<PathBuf>,
        /// The OS error.
        source: io::Error,
    },
    /// A file exists but is not a valid edge-file/index (bad magic).
    BadMagic {
        /// The file with the unrecognized header.
        path: PathBuf,
        /// The four bytes found.
        found: [u8; 4],
    },
    /// File format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims.
    Truncated {
        /// The file with the inconsistent length.
        path: PathBuf,
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Edge references a node id ≥ the declared node count.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The declared node count.
        num_nodes: u64,
    },
    /// The offset index is not monotonically non-decreasing or does not end
    /// at the edge count.
    CorruptIndex(String),
    /// An invalid parameter was supplied (empty graph, zero fanout, ...).
    InvalidParameter(String),
    /// A text edge list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: u64,
        /// The unparseable content (truncated).
        content: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io { path, source } => match path {
                Some(p) => write!(f, "i/o error on {}: {source}", p.display()),
                None => write!(f, "i/o error: {source}"),
            },
            GraphError::BadMagic { path, found } => write!(
                f,
                "bad magic {:?} in {}",
                String::from_utf8_lossy(found),
                path.display()
            ),
            GraphError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            GraphError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{} truncated: header implies {expected} bytes, found {actual}",
                path.display()
            ),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            GraphError::CorruptIndex(msg) => write!(f, "corrupt offset index: {msg}"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Parse { line, content } => {
                write!(f, "cannot parse edge list line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(source: io::Error) -> Self {
        GraphError::Io { path: None, source }
    }
}

impl GraphError {
    /// Attaches a path to a bare I/O error for better diagnostics.
    pub fn io_at(path: impl Into<PathBuf>, source: io::Error) -> Self {
        GraphError::Io {
            path: Some(path.into()),
            source,
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 99,
            num_nodes: 10,
        };
        assert!(e.to_string().contains("99"));
        let e = GraphError::Truncated {
            path: PathBuf::from("/tmp/x"),
            expected: 100,
            actual: 50,
        };
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn io_conversion_and_source() {
        use std::error::Error;
        let e: GraphError = io::Error::from_raw_os_error(libc_enoent()).into();
        assert!(e.source().is_some());
    }

    fn libc_enoent() -> i32 {
        2
    }
}
