//! Synthetic graph generators.
//!
//! The paper evaluates on four graphs (Table 1): three real-world
//! (ogbn-papers100M, Friendster, Yahoo WebScope) and one synthetic
//! Graph500 Kronecker graph. The real datasets are license- or size-gated,
//! so this reproduction regenerates graphs with the same node/edge counts
//! (at a configurable scale) and the same *degree-skew class*:
//!
//! * [`rmat`] — R-MAT/Kronecker (the Graph500 generator the paper's
//!   Synthetic dataset uses), heavy-tailed and community-structured.
//! * [`powerlaw`] — Zipf-like power-law endpoint sampling for the
//!   social/web/citation graphs.
//! * [`uniform`] — Erdős–Rényi, as a low-skew control.
//!
//! All generators are streaming iterators: edge lists never materialize in
//! memory, so billion-edge generation is possible through the external-sort
//! preprocessor.

pub mod powerlaw;
pub mod rmat;
pub mod uniform;

pub use powerlaw::PowerLawEdges;
pub use rmat::RmatEdges;
pub use uniform::UniformEdges;

use crate::types::NodeId;

/// Declarative generator choice (used by the dataset catalog).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneratorSpec {
    /// R-MAT with `scale` (2^scale nodes) and Graph500 probabilities.
    Rmat {
        /// log2 of the node count.
        scale: u32,
        /// Number of edges to emit.
        edges: u64,
    },
    /// Power-law (Zipf-like) endpoints over `nodes` nodes.
    PowerLaw {
        /// Node count.
        nodes: u64,
        /// Number of edges to emit.
        edges: u64,
        /// Skew exponent (larger = more skewed; typical 0.6–0.9).
        exponent: f64,
    },
    /// Uniform random endpoints.
    Uniform {
        /// Node count.
        nodes: u64,
        /// Number of edges to emit.
        edges: u64,
    },
}

impl GeneratorSpec {
    /// Node count of the generated graph.
    pub fn num_nodes(&self) -> u64 {
        match *self {
            GeneratorSpec::Rmat { scale, .. } => 1u64 << scale,
            GeneratorSpec::PowerLaw { nodes, .. } | GeneratorSpec::Uniform { nodes, .. } => nodes,
        }
    }

    /// Edge count of the generated graph.
    pub fn num_edges(&self) -> u64 {
        match *self {
            GeneratorSpec::Rmat { edges, .. }
            | GeneratorSpec::PowerLaw { edges, .. }
            | GeneratorSpec::Uniform { edges, .. } => edges,
        }
    }

    /// Instantiates the streaming edge iterator for `seed`.
    pub fn stream(&self, seed: u64) -> Box<dyn Iterator<Item = (NodeId, NodeId)> + Send> {
        match *self {
            GeneratorSpec::Rmat { scale, edges } => {
                Box::new(RmatEdges::graph500(scale, edges, seed))
            }
            GeneratorSpec::PowerLaw {
                nodes,
                edges,
                exponent,
            } => Box::new(PowerLawEdges::new(nodes, edges, exponent, seed)),
            GeneratorSpec::Uniform { nodes, edges } => {
                Box::new(UniformEdges::new(nodes, edges, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_counts() {
        let s = GeneratorSpec::Rmat {
            scale: 10,
            edges: 99,
        };
        assert_eq!(s.num_nodes(), 1024);
        assert_eq!(s.num_edges(), 99);
        let s = GeneratorSpec::PowerLaw {
            nodes: 5,
            edges: 7,
            exponent: 0.7,
        };
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.num_edges(), 7);
    }

    #[test]
    fn streams_emit_exact_counts_in_range() {
        for spec in [
            GeneratorSpec::Rmat {
                scale: 8,
                edges: 1000,
            },
            GeneratorSpec::PowerLaw {
                nodes: 256,
                edges: 1000,
                exponent: 0.8,
            },
            GeneratorSpec::Uniform {
                nodes: 256,
                edges: 1000,
            },
        ] {
            let edges: Vec<_> = spec.stream(42).collect();
            assert_eq!(edges.len(), 1000);
            for (s, d) in edges {
                assert!((s as u64) < spec.num_nodes());
                assert!((d as u64) < spec.num_nodes());
            }
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let spec = GeneratorSpec::Uniform {
            nodes: 100,
            edges: 50,
        };
        let a: Vec<_> = spec.stream(1).collect();
        let b: Vec<_> = spec.stream(1).collect();
        let c: Vec<_> = spec.stream(2).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
