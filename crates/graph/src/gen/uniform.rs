//! Uniform (Erdős–Rényi `G(n, m)` style) edge generator — the low-skew
//! control used by tests and ablations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::NodeId;

/// Streaming iterator of `m` uniformly random edges over `n` nodes.
#[derive(Debug, Clone)]
pub struct UniformEdges {
    rng: StdRng,
    nodes: u64,
    remaining: u64,
}

impl UniformEdges {
    /// Creates a stream of `edges` uniform edges over `nodes` nodes.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `nodes > u32::MAX + 1`.
    pub fn new(nodes: u64, edges: u64, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(nodes <= (1 << 32), "node ids must fit u32");
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x554E_4946),
            nodes,
            remaining: edges,
        }
    }
}

impl Iterator for UniformEdges {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let s = self.rng.gen_range(0..self.nodes) as NodeId;
        let d = self.rng.gen_range(0..self.nodes) as NodeId;
        Some((s, d))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for UniformEdges {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_range() {
        let edges: Vec<_> = UniformEdges::new(50, 500, 0).collect();
        assert_eq!(edges.len(), 500);
        assert!(edges.iter().all(|&(s, d)| s < 50 && d < 50));
    }

    #[test]
    fn roughly_uniform() {
        let n = 64u64;
        let m = 64_000u64;
        let mut deg = vec![0u64; n as usize];
        for (s, _) in UniformEdges::new(n, m, 11) {
            deg[s as usize] += 1;
        }
        let mean = (m / n) as f64;
        for (v, &d) in deg.iter().enumerate() {
            assert!(
                (d as f64) > mean * 0.5 && (d as f64) < mean * 1.5,
                "node {v} degree {d} far from mean {mean}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = UniformEdges::new(10, 20, 5).collect();
        let b: Vec<_> = UniformEdges::new(10, 20, 5).collect();
        assert_eq!(a, b);
    }
}
