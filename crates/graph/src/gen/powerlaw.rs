//! Power-law (Zipf-like) edge generator.
//!
//! Endpoints are drawn independently from a bounded continuous power-law
//! (bounded Pareto) over `[0, n)`: node rank `k` is hit with probability
//! density ∝ `(k+1)^(-exponent)`. This reproduces the skewed degree
//! distributions of the paper's social/web/citation graphs — the property
//! that drives sampling cost (hub nodes with "hundreds of thousands of
//! neighbors", §3.1) — without requiring the license-gated originals.
//!
//! The continuous inverse-CDF is exact and O(1) per sample, unlike a
//! discrete Zipf table which would cost `O(n)` memory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::NodeId;

/// Draws node ids with `P(k) ∝ (k+1)^(-exponent)` over `[0, n)`.
#[derive(Debug, Clone)]
pub struct PowerLawNodes {
    n: u64,
    /// Precomputed `1 - exponent`.
    one_minus_s: f64,
    /// `upper^(1-s) - lower^(1-s)` for the bounded inverse CDF.
    span: f64,
}

impl PowerLawNodes {
    /// Creates a sampler over `n` nodes with skew `exponent` (> 0, ≠ 1;
    /// exponent 1 is nudged to 1±ε).
    ///
    /// # Panics
    /// Panics if `n == 0` or `exponent <= 0`.
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(exponent > 0.0, "exponent must be positive");
        let s = if (exponent - 1.0).abs() < 1e-9 {
            1.0 + 1e-6
        } else {
            exponent
        };
        let one_minus_s = 1.0 - s;
        let lower = 1.0f64;
        let upper = (n + 1) as f64;
        let span = upper.powf(one_minus_s) - lower.powf(one_minus_s);
        Self {
            n,
            one_minus_s,
            span,
        }
    }

    /// Samples one node id.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let u: f64 = rng.gen::<f64>();
        // Inverse CDF of the bounded Pareto over [1, n+1): then shift to
        // 0-based node ids.
        let x = (1.0 + u * self.span).powf(1.0 / self.one_minus_s);
        let k = (x as u64).saturating_sub(1).min(self.n - 1);
        k as NodeId
    }
}

/// Streaming edge iterator with independent power-law endpoints.
#[derive(Debug, Clone)]
pub struct PowerLawEdges {
    sampler: PowerLawNodes,
    rng: StdRng,
    remaining: u64,
}

impl PowerLawEdges {
    /// Creates a stream of `edges` edges over `nodes` nodes with skew
    /// `exponent`.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `exponent <= 0`.
    pub fn new(nodes: u64, edges: u64, exponent: f64, seed: u64) -> Self {
        Self {
            sampler: PowerLawNodes::new(nodes, exponent),
            rng: StdRng::seed_from_u64(seed ^ 0x504C_4157),
            remaining: edges,
        }
    }
}

impl Iterator for PowerLawEdges {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let s = self.sampler.sample(&mut self.rng);
        let d = self.sampler.sample(&mut self.rng);
        Some((s, d))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PowerLawEdges {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let s = PowerLawNodes::new(100, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!((s.sample(&mut rng) as u64) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let s = PowerLawNodes::new(10_000, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if (s.sample(&mut rng) as u64) < 100 {
                low += 1;
            }
        }
        // Top 1% of ranks should receive far more than 1% of mass.
        assert!(
            low > total / 10,
            "expected skew toward low ranks, got {low}/{total}"
        );
    }

    #[test]
    fn higher_exponent_more_skew() {
        let mild = PowerLawNodes::new(10_000, 0.5);
        let steep = PowerLawNodes::new(10_000, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let count_low = |s: &PowerLawNodes, rng: &mut StdRng| {
            (0..50_000)
                .filter(|_| (s.sample(rng) as u64) < 10)
                .count()
        };
        let a = count_low(&mild, &mut rng);
        let b = count_low(&steep, &mut rng);
        assert!(b > 2 * a, "steeper exponent should concentrate: {a} vs {b}");
    }

    #[test]
    fn exponent_one_is_handled() {
        let s = PowerLawNodes::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!((s.sample(&mut rng) as u64) < 1000);
        }
    }

    #[test]
    fn single_node_graph() {
        let s = PowerLawNodes::new(1, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(s.sample(&mut rng), 0);
    }

    #[test]
    fn edge_stream_exact_count() {
        let edges: Vec<_> = PowerLawEdges::new(64, 100, 0.7, 9).collect();
        assert_eq!(edges.len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = PowerLawNodes::new(0, 0.5);
    }
}
