//! R-MAT / Kronecker edge generator (Graph500 reference parameters).
//!
//! The paper's Synthetic dataset comes from the Graph500 Kronecker
//! generator \[26\]; this is the standard streaming R-MAT recursion with the
//! Graph500 probabilities `(A, B, C) = (0.57, 0.19, 0.19)` and per-level
//! probability noise, which yields the heavy-tailed degree distribution the
//! paper's evaluation relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::NodeId;

/// Streaming R-MAT edge iterator.
#[derive(Debug, Clone)]
pub struct RmatEdges {
    rng: StdRng,
    scale: u32,
    remaining: u64,
    a: f64,
    b: f64,
    c: f64,
}

impl RmatEdges {
    /// R-MAT with explicit quadrant probabilities (`d = 1 - a - b - c`).
    ///
    /// # Panics
    /// Panics if probabilities are outside `[0, 1]` or sum above 1, or if
    /// `scale` exceeds 31 (node ids must fit `u32`).
    pub fn new(scale: u32, edges: u64, a: f64, b: f64, c: f64, seed: u64) -> Self {
        assert!(scale <= 31, "scale {scale} exceeds u32 node ids");
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0, "negative probability");
        assert!(a + b + c <= 1.0 + 1e-9, "probabilities exceed 1");
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x524D_4154),
            scale,
            remaining: edges,
            a,
            b,
            c,
        }
    }

    /// Graph500 reference parameters (A=0.57, B=C=0.19, D=0.05).
    pub fn graph500(scale: u32, edges: u64, seed: u64) -> Self {
        Self::new(scale, edges, 0.57, 0.19, 0.19, seed)
    }

    fn gen_edge(&mut self) -> (NodeId, NodeId) {
        let mut src: u64 = 0;
        let mut dst: u64 = 0;
        for _ in 0..self.scale {
            src <<= 1;
            dst <<= 1;
            // Per-level multiplicative noise (±10%) as in the Graph500
            // reference implementation, to avoid exactly self-similar
            // artifacts.
            let noise = |rng: &mut StdRng, p: f64| p * (0.9 + 0.2 * rng.gen::<f64>());
            let a = noise(&mut self.rng, self.a);
            let b = noise(&mut self.rng, self.b);
            let c = noise(&mut self.rng, self.c);
            let d = noise(&mut self.rng, 1.0 - self.a - self.b - self.c);
            let total = a + b + c + d;
            let r: f64 = self.rng.gen::<f64>() * total;
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        (src as NodeId, dst as NodeId)
    }
}

impl Iterator for RmatEdges {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.gen_edge())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RmatEdges {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exact_count_in_range() {
        let edges: Vec<_> = RmatEdges::graph500(10, 5000, 1).collect();
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|&(s, d)| s < 1024 && d < 1024));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = RmatEdges::graph500(8, 100, 7).collect();
        let b: Vec<_> = RmatEdges::graph500(8, 100, 7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // With Graph500 parameters the max degree should far exceed the
        // mean (heavy tail), unlike a uniform graph.
        let scale = 12;
        let n = 1usize << scale;
        let m = 16 * n as u64;
        let mut deg = vec![0u64; n];
        for (s, _) in RmatEdges::graph500(scale as u32, m, 3) {
            deg[s as usize] += 1;
        }
        let mean = m as f64 / n as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(
            max > 10.0 * mean,
            "expected heavy tail: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn size_hint_is_exact() {
        let it = RmatEdges::graph500(5, 42, 0);
        assert_eq!(it.len(), 42);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn scale_over_31_rejected() {
        let _ = RmatEdges::graph500(32, 1, 0);
    }

    #[test]
    #[should_panic(expected = "probabilities exceed 1")]
    fn bad_probabilities_rejected() {
        let _ = RmatEdges::new(4, 1, 0.9, 0.9, 0.9, 0);
    }
}
