//! In-memory CSR (compressed sparse row) graph.
//!
//! Used by the in-memory baselines (DGL-CPU/GPU analogs) and as the source
//! representation the preprocessor can serialize to disk. The layout is the
//! in-memory twin of the on-disk edge file: `offsets[v]..offsets[v+1]`
//! indexes `neighbors`.

use crate::error::{GraphError, Result};
use crate::types::NodeId;

/// An immutable in-memory adjacency structure in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    neighbors: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge iterator.
    ///
    /// Node count is `num_nodes`; every edge endpoint must be below it.
    /// Neighbor lists preserve the per-source input order (a counting sort
    /// by source, matching the preprocessor's "sort by source" step).
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfRange`] if an endpoint exceeds `num_nodes`.
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let check = |v: NodeId| -> Result<()> {
            if (v as usize) < num_nodes {
                Ok(())
            } else {
                Err(GraphError::NodeOutOfRange {
                    node: v as u64,
                    num_nodes: num_nodes as u64,
                })
            }
        };

        // Two-pass counting sort; the edge list is buffered because the
        // iterator cannot be rewound. (Larger-than-memory inputs go through
        // `preprocess::build_dataset` instead.)
        let buffered: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        let mut degree = vec![0u64; num_nodes];
        for &(s, d) in &buffered {
            check(s)?;
            check(d)?;
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..num_nodes].to_vec();
        let mut neighbors = vec![0 as NodeId; buffered.len()];
        for &(s, d) in &buffered {
            let c = &mut cursor[s as usize];
            neighbors[*c as usize] = d;
            *c += 1;
        }
        Ok(Self { offsets, neighbors })
    }

    /// Builds directly from prevalidated CSR arrays.
    ///
    /// # Errors
    /// [`GraphError::CorruptIndex`] if `offsets` is not monotone, does not
    /// start at 0, or does not end at `neighbors.len()`.
    pub fn from_parts(offsets: Vec<u64>, neighbors: Vec<NodeId>) -> Result<Self> {
        if offsets.first() != Some(&0) {
            return Err(GraphError::CorruptIndex("offsets must start at 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::CorruptIndex("offsets must be monotone".into()));
        }
        if offsets.last().copied() != Some(neighbors.len() as u64) {
            return Err(GraphError::CorruptIndex(format!(
                "offsets end at {:?}, neighbors has {}",
                offsets.last(),
                neighbors.len()
            )));
        }
        Ok(Self { offsets, neighbors })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor slice of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The raw offset array (`num_nodes + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw neighbor array.
    pub fn neighbor_array(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Approximate resident memory of this structure in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.offsets.len() * 8 + self.neighbors.len() * 4) as u64
    }

    /// Iterator over all edges in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        // Graph from the paper's Figure 1a, partially: node 1 has
        // neighbors {2, 8, 6, 7, 11}, node 2 has {6, 8, 10, 14}.
        CsrGraph::from_edges(
            16,
            vec![
                (1, 2),
                (1, 8),
                (1, 6),
                (1, 7),
                (1, 11),
                (2, 6),
                (2, 8),
                (2, 10),
                (2, 14),
            ],
        )
        .unwrap()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = sample();
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(1), 5);
        assert_eq!(g.neighbors(1), &[2, 8, 6, 7, 11]);
        assert_eq!(g.neighbors(2), &[6, 8, 10, 14]);
        assert_eq!(g.degree(0), 0);
        assert!(g.neighbors(15).is_empty());
    }

    #[test]
    fn input_order_preserved_per_source() {
        let g = CsrGraph::from_edges(4, vec![(0, 3), (1, 2), (0, 1), (0, 2)]).unwrap();
        assert_eq!(g.neighbors(0), &[3, 1, 2]);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = CsrGraph::from_edges(4, vec![(0, 9)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 9, .. }));
    }

    #[test]
    fn from_parts_validation() {
        assert!(CsrGraph::from_parts(vec![0, 1, 2], vec![1, 0]).is_ok());
        assert!(CsrGraph::from_parts(vec![1, 2], vec![1]).is_err());
        assert!(CsrGraph::from_parts(vec![0, 2, 1], vec![1, 0]).is_err());
        assert!(CsrGraph::from_parts(vec![0, 1], vec![1, 0]).is_err());
    }

    #[test]
    fn iter_edges_roundtrip() {
        let g = sample();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), 9);
        let g2 = CsrGraph::from_edges(16, edges).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, Vec::new()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn memory_accounting() {
        let g = sample();
        assert_eq!(g.memory_bytes(), (17 * 8 + 9 * 4) as u64);
    }
}
