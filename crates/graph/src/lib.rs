//! # ringsampler-graph
//!
//! Graph storage substrate for the RingSampler reproduction (HotStorage
//! '25): in-memory CSR, the on-disk edge-file + offset-index layout the
//! sampler reads through io_uring, a larger-than-memory preprocessing
//! pipeline (external merge sort), text edge-list I/O, synthetic graph
//! generators, and the Table-1 dataset catalog.
//!
//! ## Example: generate, preprocess, inspect
//!
//! ```rust
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use ringsampler_graph::gen::GeneratorSpec;
//! use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
//! use ringsampler_graph::stats::GraphStats;
//!
//! let spec = GeneratorSpec::Rmat { scale: 10, edges: 8_192 };
//! let base = std::env::temp_dir().join("ringsampler-graph-doc");
//! let graph = build_dataset(
//!     spec.num_nodes(),
//!     spec.stream(42),
//!     &base,
//!     &PreprocessOptions::default(),
//! )?;
//! let stats = GraphStats::from_graph(&graph);
//! assert_eq!(stats.num_edges, 8_192);
//! assert!(stats.skew() > 3.0); // R-MAT is heavy-tailed
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod datasets;
pub mod edgefile;
pub mod error;
pub mod gen;
pub mod preprocess;
pub mod stats;
pub mod textparse;
pub mod types;
pub mod validate;

pub use csr::CsrGraph;
pub use datasets::{catalog, env_scale, DatasetId, DatasetSpec};
pub use edgefile::{EdgeFileWriter, OnDiskGraph};
pub use error::{GraphError, Result};
pub use types::{Edge, NodeId, ENTRY_BYTES};
pub use stats::{DegreeDistribution, GraphStats};
pub use validate::{validate_graph, ValidationReport};
