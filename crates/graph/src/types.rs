//! Fundamental graph value types.
//!
//! Node ids are `u32` on disk ("a flat list of integers", paper §3.1):
//! 4-byte entries keep the edge file compact and make offset arithmetic
//! trivial (`entry_offset = header + 4 * index`). The largest graph in the
//! paper (Yahoo, 1.4 B nodes) still fits in `u32`.

/// A node identifier. Stored as 4 little-endian bytes in edge files.
pub type NodeId = u32;

/// Size of one on-disk neighbor entry in bytes.
pub const ENTRY_BYTES: u64 = std::mem::size_of::<NodeId>() as u64;

/// A directed edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

impl Edge {
    /// Creates an edge from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Self { src, dst }
    }

    /// The reversed edge `dst -> src`.
    pub fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Serializes to 8 little-endian bytes (src then dst).
    pub fn to_le_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.src.to_le_bytes());
        out[4..].copy_from_slice(&self.dst.to_le_bytes());
        out
    }

    /// Deserializes from 8 little-endian bytes.
    pub fn from_le_bytes(b: [u8; 8]) -> Self {
        Self {
            src: NodeId::from_le_bytes(b[..4].try_into().expect("4 bytes")),
            dst: NodeId::from_le_bytes(b[4..].try_into().expect("4 bytes")),
        }
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((src, dst): (NodeId, NodeId)) -> Self {
        Self { src, dst }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_byte_roundtrip() {
        let e = Edge::new(0xDEAD_BEEF, 42);
        assert_eq!(Edge::from_le_bytes(e.to_le_bytes()), e);
    }

    #[test]
    fn edge_ordering_is_src_major() {
        let a = Edge::new(1, 100);
        let b = Edge::new(2, 0);
        assert!(a < b);
    }

    #[test]
    fn reversed_twice_is_identity() {
        let e = Edge::new(7, 9);
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn tuple_conversion_and_display() {
        let e: Edge = (3, 4).into();
        assert_eq!(e.to_string(), "3 -> 4");
    }
}
