//! On-disk edge file and offset index (the paper's hybrid data structure).
//!
//! Two files make up a stored graph:
//!
//! * **Edge file** (`.rsef`) — a 64-byte header followed by all destination
//!   node ids as a flat little-endian `u32` array, grouped by source node in
//!   ascending source order ("the edge file is constructed by sorting all
//!   edges based on their source nodes, then storing only the destination
//!   nodes as a flat list of integers", §3.1).
//! * **Offset index** (`.rsix`) — a small header plus `|V| + 1` `u64`
//!   entry offsets. The neighbors of node `x` live at entries
//!   `[index[x], index[x+1])` of the edge file. This array is loaded fully
//!   into memory (its size depends only on `|V|`).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::error::{GraphError, Result};
use crate::types::{NodeId, ENTRY_BYTES};

/// Magic bytes of the edge file.
pub const EDGE_MAGIC: [u8; 4] = *b"RSEF";
/// Magic bytes of the offset index file.
pub const INDEX_MAGIC: [u8; 4] = *b"RSIX";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the edge-file header in bytes.
pub const HEADER_BYTES: u64 = 64;

/// File extension of edge files.
pub const EDGE_EXT: &str = "rsef";
/// File extension of offset index files.
pub const INDEX_EXT: &str = "rsix";

fn read_exact_at(f: &mut impl Read, buf: &mut [u8], path: &Path) -> Result<()> {
    f.read_exact(buf)
        .map_err(|e| GraphError::io_at(path, e))
}

fn u32_at(b: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(b[i..i + 4].try_into().expect("4 bytes"))
}

fn u64_at(b: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"))
}

/// Parsed header of an edge file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFileHeader {
    /// Number of nodes (offset index has this + 1 entries).
    pub num_nodes: u64,
    /// Number of stored neighbor entries (= directed edges).
    pub num_edges: u64,
}

impl EdgeFileHeader {
    fn to_bytes(self) -> [u8; HEADER_BYTES as usize] {
        let mut h = [0u8; HEADER_BYTES as usize];
        h[0..4].copy_from_slice(&EDGE_MAGIC);
        h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        h[8..16].copy_from_slice(&self.num_nodes.to_le_bytes());
        h[16..24].copy_from_slice(&self.num_edges.to_le_bytes());
        h[24..28].copy_from_slice(&(ENTRY_BYTES as u32).to_le_bytes());
        h
    }

    fn from_bytes(b: &[u8; HEADER_BYTES as usize], path: &Path) -> Result<Self> {
        if b[0..4] != EDGE_MAGIC {
            return Err(GraphError::BadMagic {
                path: path.to_path_buf(),
                found: b[0..4].try_into().expect("4 bytes"),
            });
        }
        let version = u32_at(b, 4);
        if version != FORMAT_VERSION {
            return Err(GraphError::UnsupportedVersion(version));
        }
        let entry_width = u32_at(b, 24);
        if entry_width as u64 != ENTRY_BYTES {
            return Err(GraphError::CorruptIndex(format!(
                "unsupported entry width {entry_width}"
            )));
        }
        Ok(Self {
            num_nodes: u64_at(b, 8),
            num_edges: u64_at(b, 16),
        })
    }
}

/// Streaming writer producing an edge file + offset index pair.
///
/// Edges must be fed in non-decreasing source order (the preprocessor's
/// external sort guarantees this); the writer accumulates the offset index
/// as it goes, so memory use is `O(|V|)`.
#[derive(Debug)]
pub struct EdgeFileWriter {
    edge_path: PathBuf,
    index_path: PathBuf,
    out: BufWriter<File>,
    offsets: Vec<u64>,
    current_src: Option<NodeId>,
    num_nodes: u64,
    num_edges: u64,
}

impl EdgeFileWriter {
    /// Creates a writer for a graph with `num_nodes` nodes at
    /// `base.{rsef,rsix}`.
    ///
    /// # Errors
    /// Fails if the edge file cannot be created.
    pub fn create(base: &Path, num_nodes: u64) -> Result<Self> {
        let edge_path = base.with_extension(EDGE_EXT);
        let index_path = base.with_extension(INDEX_EXT);
        let f = File::create(&edge_path).map_err(|e| GraphError::io_at(&edge_path, e))?;
        let mut out = BufWriter::new(f);
        // Placeholder header, patched in finish().
        out.write_all(
            &EdgeFileHeader {
                num_nodes,
                num_edges: 0,
            }
            .to_bytes(),
        )
        .map_err(|e| GraphError::io_at(&edge_path, e))?;
        let mut offsets = Vec::with_capacity(num_nodes as usize + 1);
        offsets.push(0);
        Ok(Self {
            edge_path,
            index_path,
            out,
            offsets,
            current_src: None,
            num_nodes,
            num_edges: 0,
        })
    }

    fn close_sources_up_to(&mut self, src: NodeId) {
        // Every source between the previous one and `src` has degree 0 and
        // repeats the running offset.
        while self.offsets.len() <= src as usize {
            self.offsets.push(self.num_edges);
        }
    }

    /// Appends one edge. Sources must arrive in non-decreasing order.
    ///
    /// # Errors
    /// [`GraphError::InvalidParameter`] on out-of-order sources and
    /// [`GraphError::NodeOutOfRange`] for endpoints ≥ `num_nodes`.
    pub fn push(&mut self, src: NodeId, dst: NodeId) -> Result<()> {
        if src as u64 >= self.num_nodes || dst as u64 >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: src.max(dst) as u64,
                num_nodes: self.num_nodes,
            });
        }
        if let Some(prev) = self.current_src {
            if src < prev {
                return Err(GraphError::InvalidParameter(format!(
                    "edges out of order: source {src} after {prev}"
                )));
            }
        }
        self.close_sources_up_to(src);
        self.current_src = Some(src);
        self.out
            .write_all(&dst.to_le_bytes())
            .map_err(|e| GraphError::io_at(&self.edge_path, e))?;
        self.num_edges += 1;
        Ok(())
    }

    /// Finalizes both files and returns the opened graph handle.
    ///
    /// # Errors
    /// Fails on header patch or index write errors.
    pub fn finish(mut self) -> Result<OnDiskGraph> {
        // Close trailing zero-degree sources: offsets needs num_nodes+1 entries.
        while self.offsets.len() <= self.num_nodes as usize {
            self.offsets.push(self.num_edges);
        }
        // Patch the header with the final edge count.
        let mut f = self
            .out
            .into_inner()
            .map_err(|e| GraphError::io_at(&self.edge_path, e.into()))?;
        f.seek(SeekFrom::Start(0))
            .map_err(|e| GraphError::io_at(&self.edge_path, e))?;
        f.write_all(
            &EdgeFileHeader {
                num_nodes: self.num_nodes,
                num_edges: self.num_edges,
            }
            .to_bytes(),
        )
        .map_err(|e| GraphError::io_at(&self.edge_path, e))?;
        f.sync_all().map_err(|e| GraphError::io_at(&self.edge_path, e))?;

        // Write the offset index.
        let idx =
            File::create(&self.index_path).map_err(|e| GraphError::io_at(&self.index_path, e))?;
        let mut w = BufWriter::new(idx);
        let mut header = [0u8; 24];
        header[0..4].copy_from_slice(&INDEX_MAGIC);
        header[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&self.num_nodes.to_le_bytes());
        w.write_all(&header)
            .map_err(|e| GraphError::io_at(&self.index_path, e))?;
        for &o in &self.offsets {
            w.write_all(&o.to_le_bytes())
                .map_err(|e| GraphError::io_at(&self.index_path, e))?;
        }
        w.flush().map_err(|e| GraphError::io_at(&self.index_path, e))?;

        OnDiskGraph::open_pair(&self.edge_path, &self.index_path)
    }
}

/// A stored graph: loaded offset index + path to the on-disk edge file.
///
/// This is the structure RingSampler samples from: the offset index lives in
/// memory (`O(|V|)`), the neighbor entries stay on disk and are fetched
/// selectively through io_uring.
#[derive(Debug, Clone)]
pub struct OnDiskGraph {
    edge_path: PathBuf,
    offsets: Vec<u64>,
    num_edges: u64,
}

impl OnDiskGraph {
    /// Opens `base.rsef` + `base.rsix`.
    ///
    /// # Errors
    /// Propagates open/validate errors from [`OnDiskGraph::open_pair`].
    pub fn open(base: &Path) -> Result<Self> {
        Self::open_pair(&base.with_extension(EDGE_EXT), &base.with_extension(INDEX_EXT))
    }

    /// Opens an explicit edge-file/index pair, validating headers, sizes,
    /// and index monotonicity.
    ///
    /// # Errors
    /// [`GraphError::BadMagic`], [`GraphError::Truncated`], or
    /// [`GraphError::CorruptIndex`] on validation failure.
    pub fn open_pair(edge_path: &Path, index_path: &Path) -> Result<Self> {
        let mut ef = File::open(edge_path).map_err(|e| GraphError::io_at(edge_path, e))?;
        let mut hb = [0u8; HEADER_BYTES as usize];
        read_exact_at(&mut ef, &mut hb, edge_path)?;
        let header = EdgeFileHeader::from_bytes(&hb, edge_path)?;

        let expected = HEADER_BYTES + header.num_edges * ENTRY_BYTES;
        let actual = ef
            .metadata()
            .map_err(|e| GraphError::io_at(edge_path, e))?
            .len();
        if actual < expected {
            return Err(GraphError::Truncated {
                path: edge_path.to_path_buf(),
                expected,
                actual,
            });
        }

        let idx = File::open(index_path).map_err(|e| GraphError::io_at(index_path, e))?;
        let mut r = BufReader::new(idx);
        let mut ih = [0u8; 24];
        read_exact_at(&mut r, &mut ih, index_path)?;
        if ih[0..4] != INDEX_MAGIC {
            return Err(GraphError::BadMagic {
                path: index_path.to_path_buf(),
                found: ih[0..4].try_into().expect("4 bytes"),
            });
        }
        let version = u32_at(&ih, 4);
        if version != FORMAT_VERSION {
            return Err(GraphError::UnsupportedVersion(version));
        }
        let num_nodes = u64_at(&ih, 8);
        if num_nodes != header.num_nodes {
            return Err(GraphError::CorruptIndex(format!(
                "index claims {num_nodes} nodes, edge file {}",
                header.num_nodes
            )));
        }

        let mut offsets = vec![0u64; num_nodes as usize + 1];
        let mut buf = vec![0u8; (num_nodes as usize + 1) * 8];
        read_exact_at(&mut r, &mut buf, index_path)?;
        for (i, o) in offsets.iter_mut().enumerate() {
            *o = u64_at(&buf, i * 8);
        }
        if offsets.first() != Some(&0) {
            return Err(GraphError::CorruptIndex("first offset not 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::CorruptIndex("offsets not monotone".into()));
        }
        if offsets.last().copied() != Some(header.num_edges) {
            return Err(GraphError::CorruptIndex(format!(
                "last offset {:?} != edge count {}",
                offsets.last(),
                header.num_edges
            )));
        }

        Ok(Self {
            edge_path: edge_path.to_path_buf(),
            offsets,
            num_edges: header.num_edges,
        })
    }

    /// Path of the on-disk edge file (open it with an I/O engine to read
    /// neighbor entries).
    pub fn edge_path(&self) -> &Path {
        &self.edge_path
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u64 {
        self.offsets.len() as u64 - 1
    }

    /// Number of stored neighbor entries.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    /// Panics if `v ≥ num_nodes`.
    pub fn degree(&self, v: NodeId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Entry-index range of `v`'s neighbors in the edge file.
    ///
    /// # Panics
    /// Panics if `v ≥ num_nodes`.
    pub fn neighbor_range(&self, v: NodeId) -> Range<u64> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Byte offset in the edge file of entry index `entry`.
    pub fn entry_byte_offset(entry: u64) -> u64 {
        HEADER_BYTES + entry * ENTRY_BYTES
    }

    /// The in-memory offset index (`num_nodes + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Resident memory of the in-memory metadata in bytes — this is the
    /// quantity the paper's Fig. 5 argues is independent of `|E|`.
    pub fn metadata_bytes(&self) -> u64 {
        self.offsets.len() as u64 * 8
    }

    /// Reads the **full** neighbor list of `v` with plain file I/O.
    ///
    /// This is the "unnecessary I/O" code path of out-of-core baselines
    /// (§2.2.1); RingSampler itself never calls it during sampling.
    ///
    /// # Errors
    /// Propagates read errors.
    pub fn read_neighbors(&self, file: &File, v: NodeId) -> Result<Vec<NodeId>> {
        use std::os::unix::fs::FileExt;
        let range = self.neighbor_range(v);
        let mut buf = vec![0u8; ((range.end - range.start) * ENTRY_BYTES) as usize];
        file.read_exact_at(&mut buf, Self::entry_byte_offset(range.start))
            .map_err(|e| GraphError::io_at(&self.edge_path, e))?;
        Ok(buf
            .chunks_exact(4)
            .map(|c| NodeId::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Loads the entire graph into an in-memory CSR (used by in-memory
    /// baselines; requires `O(|E|)` memory by definition).
    ///
    /// # Errors
    /// Propagates read errors.
    pub fn load_csr(&self) -> Result<crate::csr::CsrGraph> {
        let mut f = File::open(&self.edge_path).map_err(|e| GraphError::io_at(&self.edge_path, e))?;
        f.seek(SeekFrom::Start(HEADER_BYTES))
            .map_err(|e| GraphError::io_at(&self.edge_path, e))?;
        let mut buf = vec![0u8; (self.num_edges * ENTRY_BYTES) as usize];
        read_exact_at(&mut f, &mut buf, &self.edge_path)?;
        let neighbors: Vec<NodeId> = buf
            .chunks_exact(4)
            .map(|c| NodeId::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        crate::csr::CsrGraph::from_parts(self.offsets.clone(), neighbors)
    }
}

/// Serializes an in-memory CSR graph to `base.{rsef,rsix}`.
///
/// # Errors
/// Propagates writer errors.
pub fn write_csr(graph: &crate::csr::CsrGraph, base: &Path) -> Result<OnDiskGraph> {
    let mut w = EdgeFileWriter::create(base, graph.num_nodes() as u64)?;
    for v in 0..graph.num_nodes() as NodeId {
        for &d in graph.neighbors(v) {
            w.push(v, d)?;
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    fn tmp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rs-graph-ef-{}-{tag}", std::process::id()))
    }

    fn fig1_graph() -> CsrGraph {
        CsrGraph::from_edges(
            16,
            vec![
                (1, 2),
                (1, 8),
                (1, 6),
                (1, 7),
                (1, 11),
                (2, 6),
                (2, 8),
                (2, 10),
                (2, 14),
                (6, 1),
                (6, 4),
                (6, 9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn write_and_reopen_roundtrip() {
        let base = tmp_base("roundtrip");
        let g = fig1_graph();
        let disk = write_csr(&g, &base).unwrap();
        assert_eq!(disk.num_nodes(), 16);
        assert_eq!(disk.num_edges(), 12);
        assert_eq!(disk.degree(1), 5);
        assert_eq!(disk.neighbor_range(1), 0..5);
        assert_eq!(disk.neighbor_range(2), 5..9);
        assert_eq!(disk.neighbor_range(6), 9..12);
        assert_eq!(disk.degree(0), 0);
        let loaded = disk.load_csr().unwrap();
        assert_eq!(loaded, g);
        std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
        std::fs::remove_file(base.with_extension(INDEX_EXT)).ok();
    }

    #[test]
    fn read_neighbors_matches() {
        let base = tmp_base("readnbr");
        let g = fig1_graph();
        let disk = write_csr(&g, &base).unwrap();
        let f = File::open(disk.edge_path()).unwrap();
        assert_eq!(disk.read_neighbors(&f, 1).unwrap(), vec![2, 8, 6, 7, 11]);
        assert_eq!(disk.read_neighbors(&f, 0).unwrap(), Vec::<NodeId>::new());
        std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
        std::fs::remove_file(base.with_extension(INDEX_EXT)).ok();
    }

    #[test]
    fn out_of_order_sources_rejected() {
        let base = tmp_base("order");
        let mut w = EdgeFileWriter::create(&base, 4).unwrap();
        w.push(2, 0).unwrap();
        assert!(matches!(
            w.push(1, 0),
            Err(GraphError::InvalidParameter(_))
        ));
        std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
    }

    #[test]
    fn node_out_of_range_rejected() {
        let base = tmp_base("range");
        let mut w = EdgeFileWriter::create(&base, 4).unwrap();
        assert!(w.push(0, 7).is_err());
        assert!(w.push(9, 0).is_err());
        std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let base = tmp_base("magic");
        let edge = base.with_extension(EDGE_EXT);
        let idx = base.with_extension(INDEX_EXT);
        std::fs::write(&edge, vec![0u8; 80]).unwrap();
        std::fs::write(&idx, vec![0u8; 80]).unwrap();
        assert!(matches!(
            OnDiskGraph::open(&base),
            Err(GraphError::BadMagic { .. })
        ));
        std::fs::remove_file(edge).ok();
        std::fs::remove_file(idx).ok();
    }

    #[test]
    fn truncated_edge_file_detected() {
        let base = tmp_base("trunc");
        let g = fig1_graph();
        write_csr(&g, &base).unwrap();
        let edge = base.with_extension(EDGE_EXT);
        let full = std::fs::read(&edge).unwrap();
        std::fs::write(&edge, &full[..full.len() - 8]).unwrap();
        assert!(matches!(
            OnDiskGraph::open(&base),
            Err(GraphError::Truncated { .. })
        ));
        std::fs::remove_file(edge).ok();
        std::fs::remove_file(base.with_extension(INDEX_EXT)).ok();
    }

    #[test]
    fn corrupt_index_detected() {
        let base = tmp_base("corrupt");
        let g = fig1_graph();
        write_csr(&g, &base).unwrap();
        let idx_path = base.with_extension(INDEX_EXT);
        let mut idx = std::fs::read(&idx_path).unwrap();
        // Make offsets non-monotone: bump one middle offset sky-high.
        let pos = 24 + 8 * 3;
        idx[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&idx_path, idx).unwrap();
        assert!(matches!(
            OnDiskGraph::open(&base),
            Err(GraphError::CorruptIndex(_))
        ));
        std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
        std::fs::remove_file(idx_path).ok();
    }

    #[test]
    fn unsupported_version_detected() {
        let base = tmp_base("version");
        let g = fig1_graph();
        write_csr(&g, &base).unwrap();
        let edge = base.with_extension(EDGE_EXT);
        let mut bytes = std::fs::read(&edge).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&edge, bytes).unwrap();
        assert!(matches!(
            OnDiskGraph::open(&base),
            Err(GraphError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(edge).ok();
        std::fs::remove_file(base.with_extension(INDEX_EXT)).ok();
    }

    #[test]
    fn entry_byte_offsets() {
        assert_eq!(OnDiskGraph::entry_byte_offset(0), HEADER_BYTES);
        assert_eq!(OnDiskGraph::entry_byte_offset(10), HEADER_BYTES + 40);
    }

    #[test]
    fn metadata_scales_with_nodes_not_edges() {
        let base1 = tmp_base("meta1");
        let base2 = tmp_base("meta2");
        let sparse = CsrGraph::from_edges(100, vec![(0, 1)]).unwrap();
        let dense_edges: Vec<(NodeId, NodeId)> = (0..100u32)
            .flat_map(|s| (0..50u32).map(move |d| (s, d)))
            .collect();
        let dense = CsrGraph::from_edges(100, dense_edges).unwrap();
        let d1 = write_csr(&sparse, &base1).unwrap();
        let d2 = write_csr(&dense, &base2).unwrap();
        assert_eq!(d1.metadata_bytes(), d2.metadata_bytes());
        for b in [base1, base2] {
            std::fs::remove_file(b.with_extension(EDGE_EXT)).ok();
            std::fs::remove_file(b.with_extension(INDEX_EXT)).ok();
        }
    }
}
