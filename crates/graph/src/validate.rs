//! Deep integrity validation of stored graphs (fsck for edge files).
//!
//! [`OnDiskGraph::open`](crate::edgefile::OnDiskGraph::open) validates
//! headers, lengths, and index monotonicity cheaply; this module adds the
//! expensive full-scan checks an operator wants before committing to a
//! multi-hour training run: every stored neighbor id must be a valid node,
//! and per-node degree statistics must reconcile with the offset index.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};

use crate::edgefile::{OnDiskGraph, HEADER_BYTES};
use crate::error::{GraphError, Result};
use crate::types::NodeId;

/// Outcome of a full validation scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Nodes in the graph.
    pub num_nodes: u64,
    /// Entries scanned.
    pub entries_scanned: u64,
    /// Entries whose value was ≥ the node count (corruption).
    pub out_of_range_entries: u64,
    /// First few corrupt entries as (entry index, bad value).
    pub first_bad: Vec<(u64, NodeId)>,
    /// Self-loop edges found (legal, but reported).
    pub self_loops: u64,
}

impl ValidationReport {
    /// Whether the file passed (no out-of-range entries).
    pub fn is_ok(&self) -> bool {
        self.out_of_range_entries == 0
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ok() {
            write!(
                f,
                "ok: {} entries scanned over {} nodes ({} self-loops)",
                self.entries_scanned, self.num_nodes, self.self_loops
            )
        } else {
            write!(
                f,
                "CORRUPT: {}/{} entries out of range, first at {:?}",
                self.out_of_range_entries, self.entries_scanned, self.first_bad
            )
        }
    }
}

/// Scans the full edge file, checking every stored neighbor id against
/// the node count and counting self-loops.
///
/// Runs in `O(|E|)` time and `O(1)` memory (streaming); suitable for
/// larger-than-memory files.
///
/// # Errors
/// Propagates file I/O errors; a failed *check* is reported in the
/// returned [`ValidationReport`], not as an error.
pub fn validate_graph(graph: &OnDiskGraph) -> Result<ValidationReport> {
    let path = graph.edge_path();
    let f = File::open(path).map_err(|e| GraphError::io_at(path, e))?;
    let mut r = BufReader::with_capacity(1 << 20, f);
    r.seek(SeekFrom::Start(HEADER_BYTES))
        .map_err(|e| GraphError::io_at(path, e))?;

    let num_nodes = graph.num_nodes();
    let offsets = graph.offsets();
    let mut report = ValidationReport {
        num_nodes,
        entries_scanned: 0,
        out_of_range_entries: 0,
        first_bad: Vec::new(),
        self_loops: 0,
    };

    // Walk entries while tracking which source node owns the current
    // entry index (to detect self-loops).
    let mut src: u64 = 0;
    let mut buf = [0u8; 4096];
    let total = graph.num_edges();
    let mut entry: u64 = 0;
    while entry < total {
        let want = ((total - entry) * 4).min(buf.len() as u64) as usize;
        r.read_exact(&mut buf[..want])
            .map_err(|e| GraphError::io_at(path, e))?;
        for c in buf[..want].chunks_exact(4) {
            let v = NodeId::from_le_bytes(c.try_into().expect("4 bytes"));
            // Advance src until entry < offsets[src+1].
            while offsets[src as usize + 1] <= entry {
                src += 1;
            }
            if (v as u64) >= num_nodes {
                report.out_of_range_entries += 1;
                if report.first_bad.len() < 8 {
                    report.first_bad.push((entry, v));
                }
            } else if v as u64 == src {
                report.self_loops += 1;
            }
            entry += 1;
        }
        report.entries_scanned = entry;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::edgefile::{write_csr, EDGE_EXT, INDEX_EXT};

    fn tmp_base(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rs-graph-val-{}-{tag}", std::process::id()))
    }

    fn cleanup(base: &std::path::Path) {
        std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
        std::fs::remove_file(base.with_extension(INDEX_EXT)).ok();
    }

    #[test]
    fn clean_graph_validates() {
        let base = tmp_base("clean");
        let csr = CsrGraph::from_edges(
            50,
            (0..200u32).map(|i| (i % 50, (i * 7 + 1) % 50)).collect::<Vec<_>>(),
        )
        .unwrap();
        let g = write_csr(&csr, &base).unwrap();
        let r = validate_graph(&g).unwrap();
        assert!(r.is_ok(), "{r}");
        assert_eq!(r.entries_scanned, 200);
        assert!(r.to_string().starts_with("ok"));
        cleanup(&base);
    }

    #[test]
    fn self_loops_counted_not_failed() {
        let base = tmp_base("loops");
        let csr = CsrGraph::from_edges(4, vec![(0, 0), (1, 1), (2, 3)]).unwrap();
        let g = write_csr(&csr, &base).unwrap();
        let r = validate_graph(&g).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.self_loops, 2);
        cleanup(&base);
    }

    #[test]
    fn corrupted_entry_detected_with_location() {
        let base = tmp_base("corrupt");
        let csr = CsrGraph::from_edges(
            10,
            (0..40u32).map(|i| (i % 10, (i + 1) % 10)).collect::<Vec<_>>(),
        )
        .unwrap();
        let g = write_csr(&csr, &base).unwrap();
        // Flip entry 7 to an out-of-range id.
        let edge_path = base.with_extension(EDGE_EXT);
        let mut bytes = std::fs::read(&edge_path).unwrap();
        let pos = HEADER_BYTES as usize + 7 * 4;
        bytes[pos..pos + 4].copy_from_slice(&99999u32.to_le_bytes());
        std::fs::write(&edge_path, bytes).unwrap();

        let r = validate_graph(&g).unwrap();
        assert!(!r.is_ok());
        assert_eq!(r.out_of_range_entries, 1);
        assert_eq!(r.first_bad, vec![(7, 99999)]);
        assert!(r.to_string().contains("CORRUPT"));
        cleanup(&base);
    }

    #[test]
    fn empty_graph_validates() {
        let base = tmp_base("empty");
        let csr = CsrGraph::from_edges(5, Vec::new()).unwrap();
        let g = write_csr(&csr, &base).unwrap();
        let r = validate_graph(&g).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.entries_scanned, 0);
        cleanup(&base);
    }
}
