//! Degree statistics and size accounting (feeds Table 1).

use crate::edgefile::OnDiskGraph;
use crate::types::ENTRY_BYTES;

/// Summary statistics of a stored graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub num_nodes: u64,
    /// Directed edge count.
    pub num_edges: u64,
    /// Minimum out-degree.
    pub min_degree: u64,
    /// Maximum out-degree.
    pub max_degree: u64,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Fraction of nodes with zero out-degree.
    pub isolated_fraction: f64,
    /// p50 / p90 / p99 out-degree.
    pub degree_percentiles: [u64; 3],
    /// Binary edge-file payload size (Table 1 "Bin Size").
    pub binary_bytes: u64,
}

impl GraphStats {
    /// Computes statistics from a stored graph's offset index (no edge-file
    /// reads needed).
    pub fn from_graph(g: &OnDiskGraph) -> Self {
        let n = g.num_nodes();
        let mut degrees: Vec<u64> = (0..n).map(|v| g.degree(v as u32)).collect();
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let max = degrees.iter().copied().max().unwrap_or(0);
        let min = degrees.iter().copied().min().unwrap_or(0);
        degrees.sort_unstable();
        let pct = |p: f64| -> u64 {
            if degrees.is_empty() {
                0
            } else {
                degrees[((degrees.len() - 1) as f64 * p) as usize]
            }
        };
        Self {
            num_nodes: n,
            num_edges: g.num_edges(),
            min_degree: min,
            max_degree: max,
            mean_degree: if n == 0 {
                0.0
            } else {
                g.num_edges() as f64 / n as f64
            },
            isolated_fraction: if n == 0 {
                0.0
            } else {
                isolated as f64 / n as f64
            },
            degree_percentiles: [pct(0.5), pct(0.9), pct(0.99)],
            binary_bytes: g.num_edges() * ENTRY_BYTES,
        }
    }

    /// Skew ratio `max_degree / mean_degree` — a quick heavy-tail check.
    pub fn skew(&self) -> f64 {
        if self.mean_degree == 0.0 {
            0.0
        } else {
            self.max_degree as f64 / self.mean_degree
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} deg[min/mean/max]={}/{:.1}/{} p50/p90/p99={}/{}/{} bin={}B",
            self.num_nodes,
            self.num_edges,
            self.min_degree,
            self.mean_degree,
            self.max_degree,
            self.degree_percentiles[0],
            self.degree_percentiles[1],
            self.degree_percentiles[2],
            self.binary_bytes
        )
    }
}

/// Degree histogram with a log-log power-law slope estimate.
///
/// For a heavy-tailed graph with `P(deg = k) ∝ k^(-α)`, the histogram is
/// near-linear in log-log space; [`DegreeDistribution::loglog_slope`]
/// estimates `-α` by least squares over the non-empty buckets. Used to
/// verify that generated datasets carry the degree-skew class their
/// real-world counterparts have.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeDistribution {
    /// `counts[i]` = number of nodes with out-degree in
    /// `[2^i, 2^(i+1))`; bucket 0 additionally holds degree-1 nodes.
    pub bucket_counts: Vec<u64>,
    /// Nodes with zero out-degree (excluded from the slope fit).
    pub zero_degree: u64,
}

impl DegreeDistribution {
    /// Builds the log2-bucketed histogram from a stored graph.
    pub fn from_graph(g: &OnDiskGraph) -> Self {
        let mut bucket_counts = Vec::new();
        let mut zero_degree = 0u64;
        for v in 0..g.num_nodes() {
            let d = g.degree(v as u32);
            if d == 0 {
                zero_degree += 1;
                continue;
            }
            let b = 63 - d.leading_zeros() as usize; // floor(log2(d))
            if bucket_counts.len() <= b {
                bucket_counts.resize(b + 1, 0);
            }
            bucket_counts[b] += 1;
        }
        Self {
            bucket_counts,
            zero_degree,
        }
    }

    /// Least-squares slope of `log2(count)` against `log2(degree)` over
    /// non-empty buckets. Power-law graphs give distinctly negative slopes
    /// (≈ −1 to −3); uniform-degree graphs give near-vertical histograms
    /// with a single dominant bucket (slope undefined → `None` when fewer
    /// than 3 non-empty buckets exist).
    pub fn loglog_slope(&self) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .bucket_counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i as f64, (c as f64).log2()))
            .collect();
        if pts.len() < 3 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }

    /// Whether the distribution is heavy-tailed: at least `min_buckets`
    /// occupied log2 buckets and a clearly negative log-log slope.
    pub fn is_heavy_tailed(&self) -> bool {
        self.bucket_counts.iter().filter(|&&c| c > 0).count() >= 6
            && self.loglog_slope().is_some_and(|s| s < -0.5)
    }
}

/// Formats a byte count like the paper's Table 1 (GB with one decimal).
pub fn human_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.1} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::edgefile::write_csr;

    #[test]
    fn stats_on_small_graph() {
        let base =
            std::env::temp_dir().join(format!("rs-graph-stats-{}", std::process::id()));
        let g = CsrGraph::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 0)]).unwrap();
        let disk = write_csr(&g, &base).unwrap();
        let s = GraphStats::from_graph(&disk);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.min_degree, 0);
        assert!((s.mean_degree - 1.0).abs() < 1e-9);
        assert!((s.isolated_fraction - 0.5).abs() < 1e-9);
        assert_eq!(s.binary_bytes, 16);
        assert!(s.skew() > 2.9);
        assert!(s.to_string().contains("|V|=4"));
        std::fs::remove_file(base.with_extension("rsef")).ok();
        std::fs::remove_file(base.with_extension("rsix")).ok();
    }

    #[test]
    fn degree_distribution_detects_skew() {
        use crate::gen::GeneratorSpec;
        use crate::preprocess::{build_dataset, PreprocessOptions};
        let dir = std::env::temp_dir();
        // Power-law graph → heavy-tailed.
        let pl = GeneratorSpec::PowerLaw { nodes: 4_000, edges: 60_000, exponent: 0.8 };
        let base = dir.join(format!("rs-stats-dd-pl-{}", std::process::id()));
        let g = build_dataset(4_000, pl.stream(3), &base, &PreprocessOptions::default()).unwrap();
        let dd = DegreeDistribution::from_graph(&g);
        assert!(dd.is_heavy_tailed(), "slope {:?}", dd.loglog_slope());
        assert!(dd.loglog_slope().unwrap() < -0.5);
        // Uniform graph → not heavy-tailed.
        let un = GeneratorSpec::Uniform { nodes: 4_000, edges: 60_000 };
        let base2 = dir.join(format!("rs-stats-dd-un-{}", std::process::id()));
        let g2 = build_dataset(4_000, un.stream(3), &base2, &PreprocessOptions::default()).unwrap();
        let dd2 = DegreeDistribution::from_graph(&g2);
        assert!(!dd2.is_heavy_tailed(), "uniform should not be heavy-tailed: {:?}", dd2.loglog_slope());
        for b in [base, base2] {
            std::fs::remove_file(b.with_extension("rsef")).ok();
            std::fs::remove_file(b.with_extension("rsix")).ok();
        }
    }

    #[test]
    fn degree_distribution_edge_cases() {
        use crate::csr::CsrGraph;
        use crate::edgefile::write_csr;
        let base = std::env::temp_dir().join(format!("rs-stats-dd-edge-{}", std::process::id()));
        let g = write_csr(&CsrGraph::from_edges(4, vec![(0, 1)]).unwrap(), &base).unwrap();
        let dd = DegreeDistribution::from_graph(&g);
        assert_eq!(dd.zero_degree, 3);
        assert_eq!(dd.bucket_counts, vec![1]);
        assert_eq!(dd.loglog_slope(), None);
        assert!(!dd.is_heavy_tailed());
        std::fs::remove_file(base.with_extension("rsef")).ok();
        std::fs::remove_file(base.with_extension("rsix")).ok();
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.0 GB");
    }
}
