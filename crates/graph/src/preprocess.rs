//! Preprocessing pipeline: arbitrary edge streams → sorted edge file +
//! offset index.
//!
//! The paper's data layout requires all edges sorted by source. For inputs
//! larger than memory this module implements a classic **external merge
//! sort**: edges are buffered in bounded chunks, each chunk is sorted and
//! spilled as a run file, and the runs are k-way merged directly into the
//! streaming [`EdgeFileWriter`]. Peak
//! memory is `O(chunk + |V|)` — in contrast to Marius-style preprocessing
//! that materializes the whole graph and OOMs on billion-edge inputs (§4.2).

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::edgefile::{EdgeFileWriter, OnDiskGraph};
use crate::error::{GraphError, Result};
use crate::types::{Edge, NodeId};

/// Tuning options for [`build_dataset`].
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Maximum edges buffered in memory per sort chunk.
    pub chunk_edges: usize,
    /// Directory for temporary run files (defaults to the output's parent).
    pub tmp_dir: Option<PathBuf>,
    /// Also store the reverse of every edge (paper graphs are treated as
    /// undirected for sampling: a neighbor relation in both directions).
    pub symmetrize: bool,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        Self {
            chunk_edges: 4 << 20, // 4 Mi edges = 32 MiB per chunk buffer
            tmp_dir: None,
            symmetrize: false,
        }
    }
}

/// Builds `base.{rsef,rsix}` from an arbitrary edge stream.
///
/// Edges may arrive in any order; endpoints must be `< num_nodes`.
///
/// # Errors
/// Propagates I/O errors and endpoint validation errors.
///
/// # Examples
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
/// let base = std::env::temp_dir().join("rs-doc-preprocess");
/// let edges = vec![(2u32, 0u32), (0, 1), (2, 1), (0, 2)];
/// let graph = build_dataset(3, edges.into_iter(), &base, &PreprocessOptions::default())?;
/// assert_eq!(graph.num_edges(), 4);
/// assert_eq!(graph.degree(0), 2);
/// # Ok(())
/// # }
/// ```
pub fn build_dataset<I>(
    num_nodes: u64,
    edges: I,
    base: &Path,
    opts: &PreprocessOptions,
) -> Result<OnDiskGraph>
where
    I: Iterator<Item = (NodeId, NodeId)>,
{
    if opts.chunk_edges == 0 {
        return Err(GraphError::InvalidParameter(
            "chunk_edges must be positive".into(),
        ));
    }
    let tmp_dir = match &opts.tmp_dir {
        Some(d) => d.clone(),
        None => base
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir),
    };

    let mut runs: Vec<RunFile> = Vec::new();
    let mut chunk: Vec<Edge> = Vec::with_capacity(opts.chunk_edges.min(1 << 22));

    let push_edge = |chunk: &mut Vec<Edge>, e: Edge, runs: &mut Vec<RunFile>| -> Result<()> {
        if e.src as u64 >= num_nodes || e.dst as u64 >= num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: e.src.max(e.dst) as u64,
                num_nodes,
            });
        }
        chunk.push(e);
        if chunk.len() >= opts.chunk_edges {
            runs.push(spill_run(chunk, &tmp_dir, runs.len())?);
            chunk.clear();
        }
        Ok(())
    };

    for (s, d) in edges {
        push_edge(&mut chunk, Edge::new(s, d), &mut runs)?;
        if opts.symmetrize && s != d {
            push_edge(&mut chunk, Edge::new(d, s), &mut runs)?;
        }
    }

    let graph = if runs.is_empty() {
        // Everything fit in one chunk: sort in memory and stream out.
        chunk.sort_unstable();
        let mut w = EdgeFileWriter::create(base, num_nodes)?;
        for e in &chunk {
            w.push(e.src, e.dst)?;
        }
        w.finish()?
    } else {
        if !chunk.is_empty() {
            runs.push(spill_run(&mut chunk, &tmp_dir, runs.len())?);
            chunk.clear();
        }
        merge_runs(num_nodes, runs, base)?
    };
    Ok(graph)
}

struct RunFile {
    path: PathBuf,
    edges: u64,
}

impl Drop for RunFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

fn spill_run(chunk: &mut [Edge], tmp_dir: &Path, seq: usize) -> Result<RunFile> {
    chunk.sort_unstable();
    let path = tmp_dir.join(format!(
        "rs-run-{}-{seq}.tmp",
        std::process::id()
    ));
    let f = File::create(&path).map_err(|e| GraphError::io_at(&path, e))?;
    let mut w = BufWriter::new(f);
    for e in chunk.iter() {
        w.write_all(&e.to_le_bytes())
            .map_err(|e2| GraphError::io_at(&path, e2))?;
    }
    w.flush().map_err(|e| GraphError::io_at(&path, e))?;
    Ok(RunFile {
        path,
        edges: chunk.len() as u64,
    })
}

struct RunReader {
    reader: BufReader<File>,
    path: PathBuf,
    remaining: u64,
    head: Edge,
}

impl RunReader {
    fn open(run: &RunFile) -> Result<Option<Self>> {
        if run.edges == 0 {
            return Ok(None);
        }
        let f = File::open(&run.path).map_err(|e| GraphError::io_at(&run.path, e))?;
        let mut r = Self {
            reader: BufReader::with_capacity(1 << 16, f),
            path: run.path.clone(),
            remaining: run.edges,
            head: Edge::default(),
        };
        r.advance()?;
        Ok(Some(r))
    }

    /// Loads the next edge into `head`; returns false at end of run.
    fn advance(&mut self) -> Result<bool> {
        if self.remaining == 0 {
            return Ok(false);
        }
        let mut b = [0u8; 8];
        self.reader
            .read_exact(&mut b)
            .map_err(|e| GraphError::io_at(&self.path, e))?;
        self.head = Edge::from_le_bytes(b);
        self.remaining -= 1;
        Ok(true)
    }
}

/// Min-heap entry: ordered by head edge (reversed for BinaryHeap).
struct HeapEntry(RunReader);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.head == other.0.head
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.head.cmp(&self.0.head) // reversed: min-heap
    }
}

fn merge_runs(num_nodes: u64, runs: Vec<RunFile>, base: &Path) -> Result<OnDiskGraph> {
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for run in &runs {
        if let Some(r) = RunReader::open(run)? {
            heap.push(HeapEntry(r));
        }
    }
    let mut w = EdgeFileWriter::create(base, num_nodes)?;
    while let Some(HeapEntry(mut r)) = heap.pop() {
        w.push(r.head.src, r.head.dst)?;
        if r.advance()? {
            heap.push(HeapEntry(r));
        }
    }
    w.finish()
    // run files removed by RunFile::drop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgefile::{EDGE_EXT, INDEX_EXT};

    fn cleanup(base: &Path) {
        std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
        std::fs::remove_file(base.with_extension(INDEX_EXT)).ok();
    }

    fn tmp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rs-graph-pp-{}-{tag}", std::process::id()))
    }

    fn pseudo_edges(n_nodes: u32, n_edges: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        // Small deterministic LCG so tests don't depend on rand here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n_edges)
            .map(|_| ((next() % n_nodes as u64) as u32, (next() % n_nodes as u64) as u32))
            .collect()
    }

    #[test]
    fn in_memory_path_produces_sorted_graph() {
        let base = tmp_base("mem");
        let edges = pseudo_edges(50, 500, 7);
        let g = build_dataset(50, edges.iter().copied(), &base, &PreprocessOptions::default())
            .unwrap();
        assert_eq!(g.num_edges(), 500);
        // degree sum equals edge count
        let total: u64 = (0..50u32).map(|v| g.degree(v)).sum();
        assert_eq!(total, 500);
        cleanup(&base);
    }

    #[test]
    fn external_sort_matches_in_memory_sort() {
        let base_a = tmp_base("ext-a");
        let base_b = tmp_base("ext-b");
        let edges = pseudo_edges(200, 5000, 13);

        let big = build_dataset(
            200,
            edges.iter().copied(),
            &base_a,
            &PreprocessOptions::default(),
        )
        .unwrap();
        let tiny_chunks = build_dataset(
            200,
            edges.iter().copied(),
            &base_b,
            &PreprocessOptions {
                chunk_edges: 64, // force ~80 runs
                ..Default::default()
            },
        )
        .unwrap();

        let csr_a = big.load_csr().unwrap();
        let csr_b = tiny_chunks.load_csr().unwrap();
        // Sort order within a source may differ only by dst order; both
        // paths sort (src, dst), so they must be identical.
        assert_eq!(csr_a, csr_b);
        cleanup(&base_a);
        cleanup(&base_b);
    }

    #[test]
    fn run_files_are_cleaned_up() {
        let base = tmp_base("clean");
        let edges = pseudo_edges(100, 2000, 3);
        build_dataset(
            100,
            edges.into_iter(),
            &base,
            &PreprocessOptions {
                chunk_edges: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(base.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("rs-run-{}", std::process::id()))
            })
            .collect();
        assert!(leftovers.is_empty(), "temp runs left behind: {leftovers:?}");
        cleanup(&base);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let base = tmp_base("symm");
        let g = build_dataset(
            4,
            vec![(0u32, 1u32), (2, 3)].into_iter(),
            &base,
            &PreprocessOptions {
                symmetrize: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(3), 1);
        cleanup(&base);
    }

    #[test]
    fn self_loops_not_duplicated_by_symmetrize() {
        let base = tmp_base("selfloop");
        let g = build_dataset(
            2,
            vec![(0u32, 0u32)].into_iter(),
            &base,
            &PreprocessOptions {
                symmetrize: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.num_edges(), 1);
        cleanup(&base);
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let base = tmp_base("oob");
        let r = build_dataset(
            4,
            vec![(0u32, 10u32)].into_iter(),
            &base,
            &PreprocessOptions::default(),
        );
        assert!(matches!(r, Err(GraphError::NodeOutOfRange { .. })));
        cleanup(&base);
    }

    #[test]
    fn rejects_zero_chunk() {
        let base = tmp_base("zc");
        let r = build_dataset(
            4,
            std::iter::empty(),
            &base,
            &PreprocessOptions {
                chunk_edges: 0,
                ..Default::default()
            },
        );
        assert!(matches!(r, Err(GraphError::InvalidParameter(_))));
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let base = tmp_base("empty");
        let g = build_dataset(10, std::iter::empty(), &base, &PreprocessOptions::default())
            .unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 10);
        cleanup(&base);
    }
}
