//! Raw text edge-list parsing and writing (SNAP-style `src<ws>dst` lines).
//!
//! The paper's Table 1 reports graph sizes in "raw text" and "binary"
//! format; this module produces and consumes the raw-text side.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::error::{GraphError, Result};
use crate::types::NodeId;

/// A streaming parser over a SNAP-style text edge list.
///
/// Accepts `#`- and `%`-prefixed comment lines and blank lines; fields may
/// be separated by any run of spaces or tabs.
#[derive(Debug)]
pub struct TextEdgeReader {
    lines: std::io::Lines<BufReader<File>>,
    path: PathBuf,
    line_no: u64,
}

impl TextEdgeReader {
    /// Opens a text edge list.
    ///
    /// # Errors
    /// Fails if the file cannot be opened.
    pub fn open(path: &Path) -> Result<Self> {
        let f = File::open(path).map_err(|e| GraphError::io_at(path, e))?;
        Ok(Self {
            lines: BufReader::new(f).lines(),
            path: path.to_path_buf(),
            line_no: 0,
        })
    }
}

impl Iterator for TextEdgeReader {
    type Item = Result<(NodeId, NodeId)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(GraphError::io_at(&self.path, e))),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let mut it = trimmed.split_whitespace();
            let parse = |tok: Option<&str>, line_no: u64, full: &str| -> Result<NodeId> {
                tok.and_then(|t| t.parse::<NodeId>().ok())
                    .ok_or_else(|| GraphError::Parse {
                        line: line_no,
                        content: full.chars().take(80).collect(),
                    })
            };
            let src = match parse(it.next(), self.line_no, trimmed) {
                Ok(v) => v,
                Err(e) => return Some(Err(e)),
            };
            let dst = match parse(it.next(), self.line_no, trimmed) {
                Ok(v) => v,
                Err(e) => return Some(Err(e)),
            };
            return Some(Ok((src, dst)));
        }
    }
}

/// Writes edges as a text edge list; returns the number of bytes written
/// (the "raw size" of Table 1).
///
/// # Errors
/// Propagates file I/O errors.
pub fn write_text_edges<I>(path: &Path, edges: I) -> Result<u64>
where
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    let f = File::create(path).map_err(|e| GraphError::io_at(path, e))?;
    let mut w = CountingWriter {
        inner: BufWriter::new(f),
        bytes: 0,
    };
    for (s, d) in edges {
        writeln!(w, "{s}\t{d}").map_err(|e| GraphError::io_at(path, e))?;
    }
    w.inner.flush().map_err(|e| GraphError::io_at(path, e))?;
    Ok(w.bytes)
}

struct CountingWriter<W: Write> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Computes the raw-text byte size of an edge stream without writing a file
/// (each line is `len(src) + 1 + len(dst) + 1` bytes).
pub fn text_size_bytes<I>(edges: I) -> u64
where
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    fn digits(mut v: NodeId) -> u64 {
        let mut n = 1;
        while v >= 10 {
            v /= 10;
            n += 1;
        }
        n
    }
    edges
        .into_iter()
        .map(|(s, d)| digits(s) + digits(d) + 2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rs-graph-txt-{}-{tag}", std::process::id()))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let path = tmp("rt");
        let edges = vec![(0u32, 1u32), (5, 2), (1000000, 7)];
        let bytes = write_text_edges(&path, edges.iter().copied()).unwrap();
        assert!(bytes > 0);
        let back: Vec<_> = TextEdgeReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(back, edges);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let path = tmp("comments");
        std::fs::write(&path, "# header\n\n% more\n1 2\n  3\t4  \n").unwrap();
        let back: Vec<_> = TextEdgeReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(back, vec![(1, 2), (3, 4)]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let path = tmp("bad");
        std::fs::write(&path, "1 2\nnot numbers\n").unwrap();
        let results: Vec<_> = TextEdgeReader::open(&path).unwrap().collect();
        assert!(results[0].is_ok());
        match &results[1] {
            Err(GraphError::Parse { line, .. }) => assert_eq!(*line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_second_field_is_error() {
        let path = tmp("short");
        std::fs::write(&path, "42\n").unwrap();
        let results: Vec<_> = TextEdgeReader::open(&path).unwrap().collect();
        assert!(matches!(results[0], Err(GraphError::Parse { .. })));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_size_matches_actual_file() {
        let path = tmp("size");
        let edges = [(0u32, 1u32), (99, 100), (123456, 7)];
        let predicted = text_size_bytes(edges.iter().copied());
        let actual = write_text_edges(&path, edges.iter().copied()).unwrap();
        assert_eq!(predicted, actual);
        std::fs::remove_file(path).ok();
    }
}
