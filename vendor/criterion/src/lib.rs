//! Vendored, minimal `criterion`-compatible benchmark harness.
//!
//! The container has no crates.io access, so this reimplements the subset
//! of the criterion 0.5 API the repo's benches use: `Criterion` with
//! builder-style config, benchmark groups with `throughput` /
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark runs a warm-up, then
//! timed batches until `measurement_time` elapses (at least `sample_size`
//! batches), and reports min / median / mean ns-per-iteration plus derived
//! throughput. No HTML reports, no regression analysis — enough to compare
//! engines and queue depths on one machine, which is what the paper's
//! figures need.

use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant-folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id made of the parameter display value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing loop handle.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Filled in by `iter`: (total iterations, per-sample ns/iter).
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, storing per-sample nanoseconds-per-iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until warm_up_time elapses, measuring cost to pick
        // a batch size that keeps timer overhead negligible.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters_done as f64;
        // Aim for ~1ms batches, at least 1 iteration.
        let batch = ((1_000_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);

        let bench_start = Instant::now();
        while self.samples.len() < self.cfg.sample_size
            || bench_start.elapsed() < self.cfg.measurement_time
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
            if self.samples.len() >= self.cfg.sample_size * 64 {
                break; // fast routines: cap the sample count
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// Top-level benchmark driver (builder-style configuration).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Sets the minimum number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Sets the target measurement wall-time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up wall-time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A named group of benchmarks sharing throughput units.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher { cfg: &self.criterion.cfg, samples: Vec::new() };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut b = Bencher { cfg: &self.criterion.cfg, samples: Vec::new() };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.samples, self.throughput);
        self
    }

    /// Ends the group (printing is per-benchmark; kept for API parity).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let rate = |ns: f64, n: u64| {
        let per_sec = n as f64 * 1e9 / ns;
        if per_sec >= 1e9 {
            format!("{:.2}G/s", per_sec / 1e9)
        } else if per_sec >= 1e6 {
            format!("{:.2}M/s", per_sec / 1e6)
        } else {
            format!("{:.1}K/s", per_sec / 1e3)
        }
    };
    let thr = match throughput {
        Some(Throughput::Elements(n)) => format!("  [{} elems]", rate(median, n)),
        Some(Throughput::Bytes(n)) => format!("  [{} bytes]", rate(median, n)),
        None => String::new(),
    };
    println!(
        "{group}/{id}: min {min:.0} ns/iter, median {median:.0} ns/iter, mean {mean:.0} ns/iter ({} samples){thr}",
        samples.len()
    );
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
