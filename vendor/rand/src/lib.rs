//! Vendored, minimal `rand`-compatible crate for offline builds.
//!
//! The container has no crates.io access, so this implements — API
//! compatible with `rand 0.8` for the subset RingSampler uses — a small,
//! high-quality deterministic RNG:
//!
//! * [`rngs::StdRng`]: xoshiro256++ seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen`] for `f32`/`f64`/ints/bool, [`Rng::gen_range`] over
//!   `Range`/`RangeInclusive` of the common integer types, `gen_bool`,
//!   `fill`.
//! * [`seq::SliceRandom::shuffle`] / `choose` (Fisher–Yates).
//!
//! The streams differ from upstream `rand` (which is explicitly allowed:
//! rand's own streams change between versions); everything in-repo only
//! relies on *determinism for a fixed seed*, which this provides.

/// Core randomness source: 64 bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (the `Standard` distribution in upstream rand).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (`SampleRange` in upstream).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` via Lemire's multiply-shift with a
/// rejection pass to remove modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Zone is the largest multiple of `span` that fits in u64.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing random-value methods (blanket over every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a `u64` through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++.
    ///
    /// Not the same stream as upstream rand's `StdRng` (ChaCha12), but the
    /// same contract: high quality, deterministic for a fixed seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
    pub use super::rngs::StdRng;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order (astronomically unlikely)");
    }

    #[test]
    fn fill_bytes_varies() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        rng.fill(&mut a);
        rng.fill(&mut b);
        assert_ne!(a, b);
    }
}
