//! Vendored, minimal `libc` replacement for offline builds.
//!
//! The container building this repository has no access to crates.io, so
//! this crate declares — by hand — exactly the slice of the C ABI that
//! RingSampler uses: `syscall(2)` (for the io_uring entry points),
//! `mmap(2)`/`munmap(2)` (for the shared rings) and `close(2)`, plus the
//! constants and types those call sites need. Everything links against the
//! system C library, so behaviour is identical to the real `libc` crate
//! for this subset.
//!
//! Values are the Linux generic (asm-generic) ones, correct for x86_64 and
//! aarch64 glibc/musl targets, which is what this repo targets (io_uring is
//! Linux-only anyway).

#![allow(non_camel_case_types)]
#![cfg_attr(not(test), no_std)]

// --- primitive type aliases (linux 64-bit) ---

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;

/// glibc `sigset_t`: 1024 bits. Only ever passed by (null) pointer here, so
/// layout size is what matters.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [c_ulong; 16],
}

/// `struct iovec` from `<sys/uio.h>` (used by `IORING_REGISTER_BUFFERS`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct iovec {
    pub iov_base: *mut c_void,
    pub iov_len: size_t,
}

// --- errno values (asm-generic, linux) ---

pub const EPERM: c_int = 1;
pub const EINTR: c_int = 4;
pub const EIO: c_int = 5;
pub const EBADF: c_int = 9;
pub const EAGAIN: c_int = 11;
pub const ENOMEM: c_int = 12;
pub const EFAULT: c_int = 14;
pub const EBUSY: c_int = 16;
pub const EINVAL: c_int = 22;
pub const ENOSYS: c_int = 38;

// --- mmap constants (asm-generic, linux) ---

pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_POPULATE: c_int = 0x8000;
/// `mmap` failure sentinel: `(void *)-1`.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

extern "C" {
    /// Indirect system call. Variadic, exactly like the glibc prototype.
    pub fn syscall(num: c_long, ...) -> c_long;

    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;

    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;

    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigset_is_128_bytes() {
        assert_eq!(core::mem::size_of::<sigset_t>(), 128);
    }

    #[test]
    fn mmap_anonymous_roundtrip() {
        // SAFETY: fresh anonymous private mapping, unmapped below.
        let p = unsafe {
            mmap(
                core::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert_ne!(p, MAP_FAILED);
        // SAFETY: in-bounds write/read of our own fresh mapping.
        unsafe {
            *(p as *mut u8) = 7;
            assert_eq!(*(p as *const u8), 7);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn close_bad_fd_returns_minus_one() {
        // SAFETY: closing an invalid fd is harmless and returns -1/EBADF.
        assert_eq!(unsafe { close(-1) }, -1);
    }
}
