//! Vendored, minimal `libc` replacement for offline builds.
//!
//! The container building this repository has no access to crates.io, so
//! this crate declares — by hand — exactly the slice of the C ABI that
//! RingSampler uses: `syscall(2)` (for the io_uring entry points),
//! `mmap(2)`/`munmap(2)` (for the shared rings) and `close(2)`, plus the
//! constants and types those call sites need. Everything links against the
//! system C library, so behaviour is identical to the real `libc` crate
//! for this subset.
//!
//! Values are the Linux generic (asm-generic) ones, correct for x86_64 and
//! aarch64 glibc/musl targets, which is what this repo targets (io_uring is
//! Linux-only anyway).

#![allow(non_camel_case_types)]
#![cfg_attr(not(test), no_std)]

// --- primitive type aliases (linux 64-bit) ---

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;

/// glibc `sigset_t`: 1024 bits. Only ever passed by (null) pointer here, so
/// layout size is what matters.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [c_ulong; 16],
}

/// `struct iovec` from `<sys/uio.h>` (used by `IORING_REGISTER_BUFFERS`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct iovec {
    pub iov_base: *mut c_void,
    pub iov_len: size_t,
}

/// `clockid_t` from `<time.h>` — plain int on Linux.
pub type clockid_t = c_int;

/// `struct timespec` from `<time.h>` (linux 64-bit layout).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct timespec {
    pub tv_sec: c_long,
    pub tv_nsec: c_long,
}

/// `struct timeval` from `<sys/time.h>` (linux 64-bit layout).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct timeval {
    pub tv_sec: c_long,
    pub tv_usec: c_long,
}

/// `struct rusage` from `<sys/resource.h>` (linux 64-bit layout: two
/// timevals followed by 14 longs, in this exact order).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct rusage {
    pub ru_utime: timeval,
    pub ru_stime: timeval,
    pub ru_maxrss: c_long,
    pub ru_ixrss: c_long,
    pub ru_idrss: c_long,
    pub ru_isrss: c_long,
    pub ru_minflt: c_long,
    pub ru_majflt: c_long,
    pub ru_nswap: c_long,
    pub ru_inblock: c_long,
    pub ru_oublock: c_long,
    pub ru_msgsnd: c_long,
    pub ru_msgrcv: c_long,
    pub ru_nsignals: c_long,
    pub ru_nvcsw: c_long,
    pub ru_nivcsw: c_long,
}

// --- errno values (asm-generic, linux) ---

pub const EPERM: c_int = 1;
pub const EINTR: c_int = 4;
pub const EIO: c_int = 5;
pub const EBADF: c_int = 9;
pub const EAGAIN: c_int = 11;
pub const ENOMEM: c_int = 12;
pub const EFAULT: c_int = 14;
pub const EBUSY: c_int = 16;
pub const EINVAL: c_int = 22;
pub const ENOSYS: c_int = 38;

// --- mmap constants (asm-generic, linux) ---

pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_POPULATE: c_int = 0x8000;
/// `mmap` failure sentinel: `(void *)-1`.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

// --- resource accounting constants (linux) ---

/// `getrusage` scope: the calling thread only (Linux extension).
pub const RUSAGE_THREAD: c_int = 1;
/// Per-thread CPU-time clock for `clock_gettime`.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
/// Monotonic clock (useful for ABI tests; `std::time::Instant` wraps it).
pub const CLOCK_MONOTONIC: clockid_t = 1;

extern "C" {
    /// Indirect system call. Variadic, exactly like the glibc prototype.
    pub fn syscall(num: c_long, ...) -> c_long;

    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;

    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;

    pub fn close(fd: c_int) -> c_int;

    /// Per-thread / per-process resource usage (`RUSAGE_THREAD` scope
    /// is what ringprof uses).
    pub fn getrusage(who: c_int, usage: *mut rusage) -> c_int;

    /// POSIX clock read; ringprof uses `CLOCK_THREAD_CPUTIME_ID`.
    pub fn clock_gettime(clockid: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigset_is_128_bytes() {
        assert_eq!(core::mem::size_of::<sigset_t>(), 128);
    }

    #[test]
    fn mmap_anonymous_roundtrip() {
        // SAFETY: fresh anonymous private mapping, unmapped below.
        let p = unsafe {
            mmap(
                core::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert_ne!(p, MAP_FAILED);
        // SAFETY: in-bounds write/read of our own fresh mapping.
        unsafe {
            *(p as *mut u8) = 7;
            assert_eq!(*(p as *const u8), 7);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn close_bad_fd_returns_minus_one() {
        // SAFETY: closing an invalid fd is harmless and returns -1/EBADF.
        assert_eq!(unsafe { close(-1) }, -1);
    }

    #[test]
    fn rusage_layout_matches_glibc() {
        // Two 16-byte timevals + 14 longs = 144 bytes on 64-bit Linux.
        assert_eq!(core::mem::size_of::<timeval>(), 16);
        assert_eq!(core::mem::size_of::<timespec>(), 16);
        assert_eq!(core::mem::size_of::<rusage>(), 144);
    }

    #[test]
    fn getrusage_thread_succeeds() {
        let mut ru = rusage::default();
        // SAFETY: `ru` is a valid, writable rusage out-parameter.
        let rc = unsafe { getrusage(RUSAGE_THREAD, &mut ru) };
        assert_eq!(rc, 0);
        assert!(ru.ru_utime.tv_usec < 1_000_000);
        assert!(ru.ru_stime.tv_usec < 1_000_000);
        assert!(ru.ru_minflt >= 0);
    }

    #[test]
    fn thread_cputime_clock_is_monotone() {
        let mut a = timespec::default();
        let mut b = timespec::default();
        // SAFETY: valid timespec out-parameters.
        unsafe {
            assert_eq!(clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a), 0);
            // Burn a little CPU so the second read cannot go backwards
            // even on coarse clocks.
            let mut x = 0u64;
            for i in 0..10_000u64 {
                x = x.wrapping_add(i * i);
            }
            core::hint::black_box(x);
            assert_eq!(clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b), 0);
        }
        let an = a.tv_sec * 1_000_000_000 + a.tv_nsec;
        let bn = b.tv_sec * 1_000_000_000 + b.tv_nsec;
        assert!(bn >= an, "thread CPU clock went backwards: {an} -> {bn}");
    }
}
