//! Vendored, minimal `proptest`-compatible property-testing framework.
//!
//! The container has no crates.io access, so this provides the subset of
//! the proptest API that the repo's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` combinators.
//! * Integer `Range` / `RangeInclusive` strategies and tuple strategies.
//! * [`collection::vec`] with a size range.
//! * The [`proptest!`] macro (with `#![proptest_config(..)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (FNV of the test name) so failures reproduce exactly; and
//! there is **no shrinking** — a failing case reports its case index and
//! panics with the assertion message. For the small case counts used here
//! that is an acceptable trade for a zero-dependency build.

pub mod strategy {
    //! Value-generation strategies.

    pub use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{StdRng, Strategy};
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-execution configuration.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Compile-time FNV-1a of the test name: the per-test base seed.
    pub const fn fnv1a(name: &str) -> u64 {
        let bytes = name.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        hash
    }
}

/// `prelude` mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            use rand::SeedableRng as _;
            let config: $crate::test_runner::Config = $cfg;
            const BASE_SEED: u64 =
                $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng =
                    $crate::strategy::StdRng::seed_from_u64(BASE_SEED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $pat = ($strat).generate(&mut rng);)+
                // Isolate each case so a panic reports its index.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of {} failed (base seed {BASE_SEED:#x})",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        use crate::strategy::StdRng;
        use rand::SeedableRng;
        let s = crate::collection::vec((0u64..100, 1u32..5).prop_map(|(a, b)| a + b as u64), 1..10);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro binds tuple patterns and respects range bounds.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 5usize..=6), v in crate::collection::vec(0u64..3, 0..4)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6, "b = {}", b);
            prop_assert!(v.len() < 4);
            for x in v {
                prop_assert!(x < 3);
            }
        }

        /// flat_map chains the inner strategy on the outer value.
        #[test]
        fn flat_map_respects_outer(n in (1usize..=8).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)))) {
            let (n, k) = n;
            prop_assert!(k < n);
        }
    }
}
