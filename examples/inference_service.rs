//! On-demand sampling for near-real-time GNN inference (paper §4.4):
//! simulates a stream of single-node sampling requests from concurrent
//! clients and reports the completion-time CDF like Fig. 6.
//!
//! Run with: `cargo run --release --example inference_service`

use ringsampler::ondemand::run_on_demand;
use ringsampler::{epoch_targets, RingSampler, SamplerConfig};
use ringsampler_graph::gen::GeneratorSpec;
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled ogbn-papers-like power-law graph.
    let dir = std::env::temp_dir().join("ringsampler-inference");
    std::fs::create_dir_all(&dir)?;
    let base = dir.join("papers-like");
    let spec = GeneratorSpec::PowerLaw {
        nodes: 100_000,
        edges: 1_500_000,
        exponent: 0.7,
    };
    let graph = build_dataset(
        spec.num_nodes(),
        spec.stream(1),
        &base,
        &PreprocessOptions::default(),
    )?;
    println!("graph: {} nodes / {} edges", graph.num_nodes(), graph.num_edges());

    // Paper setting: default fanouts, mini-batch size 1 (each request is
    // an independent client), all threads serving.
    let sampler = RingSampler::new(
        graph,
        SamplerConfig::new().fanouts(&[20, 15, 10]).batch_size(1),
    )?;

    // A stream of 20k requests for random target nodes.
    let requests = 20_000usize;
    let targets: Vec<u32> = epoch_targets(sampler.graph().num_nodes(), 0, 9)
        .into_iter()
        .take(requests)
        .collect();
    println!("serving {requests} single-node sampling requests ...");
    let report = run_on_demand(&sampler, &targets)?;
    println!("{report}");

    println!("\ncompletion CDF (time by which a fraction of requests finished):");
    for (t, frac) in report.cdf_points(10) {
        let bar = "#".repeat((frac * 40.0) as usize);
        println!("  {t:>7.3}s  {frac:>5.1}%  {bar}", frac = frac * 100.0);
    }
    println!(
        "\nnarrow P50→P99 gap ({:.3}s → {:.3}s) = predictable latency under load",
        report.percentile(0.50).as_secs_f64(),
        report.percentile(0.99).as_secs_f64()
    );
    Ok(())
}
