//! Dataset builder CLI: convert a SNAP-style text edge list (or a named
//! synthetic dataset) into RingSampler's on-disk format — the
//! preprocessing stage of paper §3.1, using the larger-than-memory
//! external merge sort.
//!
//! Usage:
//!   cargo run --release --example build_dataset -- <input.txt> <out-base> [num_nodes]
//!   cargo run --release --example build_dataset -- @ogbn-papers <out-base> [scale]
//!
//! With an `@name` input (`@ogbn-papers`, `@friendster`, `@yahoo`,
//! `@synthetic`), the Table-1 synthetic reproduction is generated at the
//! given scale (default 1000) instead of reading a file.

use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::stats::{human_bytes, GraphStats};
use ringsampler_graph::textparse::TextEdgeReader;
use ringsampler_graph::{DatasetId, DatasetSpec, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: build_dataset <input.txt | @dataset> <out-base> [num_nodes | scale]");
        std::process::exit(2);
    }
    let input = &args[1];
    let out_base = std::path::PathBuf::from(&args[2]);

    let graph = if let Some(name) = input.strip_prefix('@') {
        let id = match name {
            "ogbn-papers" => DatasetId::OgbnPapers,
            "friendster" => DatasetId::Friendster,
            "yahoo" => DatasetId::Yahoo,
            "synthetic" => DatasetId::Synthetic,
            other => {
                eprintln!("unknown dataset {other:?} (use ogbn-papers|friendster|yahoo|synthetic)");
                std::process::exit(2);
            }
        };
        let scale: u64 = args.get(3).map(|s| s.parse()).transpose()?.unwrap_or(1000);
        let spec = DatasetSpec::scaled(id, scale);
        println!(
            "generating {} at 1/{scale} scale: {} nodes / {} edges",
            id.name(),
            spec.num_nodes(),
            spec.num_edges()
        );
        build_dataset(
            spec.num_nodes(),
            spec.generator.stream(spec.seed),
            &out_base,
            &PreprocessOptions::default(),
        )?
    } else {
        // Two-pass text import: first pass finds the node-id range (and
        // validates syntax), second streams edges through the external
        // sort. Memory stays O(chunk) regardless of input size.
        println!("pass 1/2: scanning {input} ...");
        let mut max_node: NodeId = 0;
        let mut count: u64 = 0;
        for edge in TextEdgeReader::open(std::path::Path::new(input))? {
            let (s, d) = edge?;
            max_node = max_node.max(s).max(d);
            count += 1;
        }
        let num_nodes: u64 = args
            .get(3)
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(max_node as u64 + 1);
        println!("pass 2/2: sorting {count} edges over {num_nodes} nodes ...");
        let edges = TextEdgeReader::open(std::path::Path::new(input))?
            .map(|r| r.expect("validated in pass 1"));
        build_dataset(num_nodes, edges, &out_base, &PreprocessOptions::default())?
    };

    let stats = GraphStats::from_graph(&graph);
    println!("wrote {}.rsef / .rsix", out_base.display());
    println!(
        "  {stats}\n  edge file {} + offset index {} (in-memory at sampling time)",
        human_bytes(stats.binary_bytes + 64),
        human_bytes(graph.metadata_bytes())
    );
    Ok(())
}
