//! Out-of-core showcase: sample a graph under a memory budget that could
//! never hold the edge list, and compare against baselines under the same
//! budget (a miniature of the paper's Fig. 5 story).
//!
//! Run with: `cargo run --release --example out_of_core`

use ringsampler::{epoch_targets, MemoryBudget, RingSampler, SamplerConfig, SamplerError};
use ringsampler_baselines::{InMemorySampler, MariusLikeSampler, NeighborSampler};
use ringsampler_graph::gen::GeneratorSpec;
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::stats::human_bytes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("ringsampler-ooc");
    std::fs::create_dir_all(&dir)?;
    let base = dir.join("yahoo-like");
    let spec = GeneratorSpec::PowerLaw {
        nodes: 200_000,
        edges: 4_000_000,
        exponent: 0.9,
    };
    let graph = build_dataset(
        spec.num_nodes(),
        spec.stream(5),
        &base,
        &PreprocessOptions::default(),
    )?;
    let edge_bytes = graph.num_edges() * 4;
    println!(
        "graph: {} nodes / {} edges ({} edge file, {} offset index)",
        graph.num_nodes(),
        graph.num_edges(),
        human_bytes(edge_bytes),
        human_bytes(graph.metadata_bytes())
    );

    // Budget: 60% of the edge file — the full graph cannot be resident.
    let budget_bytes = edge_bytes * 3 / 5;
    println!(
        "\nmemory budget: {} (edge list is {})\n",
        human_bytes(budget_bytes),
        human_bytes(edge_bytes)
    );
    let fanouts = [15usize, 10, 5];
    let targets: Vec<u32> = epoch_targets(graph.num_nodes(), 0, 3)
        .into_iter()
        .take(20_000)
        .collect();

    // RingSampler: index + workspaces only — fits easily.
    {
        let budget = MemoryBudget::limited(budget_bytes);
        let sampler = RingSampler::new(
            graph.clone(),
            SamplerConfig::new()
                .fanouts(&fanouts)
                .batch_size(128) // small batches keep workspaces within budget
                .threads(2)
                .budget(budget.clone()),
        )?;
        let r = sampler.sample_epoch(&targets)?;
        println!(
            "RingSampler : {:>8.3}s  (peak memory {} of {})",
            r.seconds(),
            human_bytes(budget.high_water()),
            human_bytes(budget_bytes)
        );
        // The epoch report's own one-line summary: humanized counters plus
        // I/O-group latency quantiles from the per-thread histograms.
        println!("              {r}");
    }

    // Marius-like: only one partition slot fits this budget (each slot
    // also carries its feature partition), so it swaps constantly.
    {
        let budget = MemoryBudget::limited(budget_bytes);
        let built = MariusLikeSampler::with_capacity(&graph, 32, 1, &fanouts, 1024, &budget, 1)
            .map(|m| {
                // Swap reads hit the page cache here; the disk model reports
                // what those whole-partition reads cost on real storage
                // (bandwidth scaled for this host, see DESIGN.md §2.1).
                m.with_disk_model(
                    ringsampler_baselines::marius_like::DiskModel::default().rates_scaled(1, 64),
                )
            });
        match built {
            Ok(mut marius) => {
                let r = marius.sample_epoch(&targets)?;
                println!(
                    "Marius-like : {:>8.3}s  ({} partition swaps, {} swapped in)",
                    r.reported_seconds(),
                    marius.swaps(),
                    human_bytes(r.measured.metrics.io_bytes)
                );
            }
            Err(SamplerError::OutOfMemory { .. }) => println!("Marius-like : OOM"),
            Err(e) => return Err(e.into()),
        }
    }

    // In-memory DGL-CPU analog: cannot even load the graph.
    {
        let budget = MemoryBudget::limited(budget_bytes);
        match InMemorySampler::new(&graph, &fanouts, 1024, 4, &budget, 1) {
            Ok(_) => println!("DGL-CPU     : unexpectedly fit"),
            Err(SamplerError::OutOfMemory {
                requested,
                available,
                ..
            }) => println!(
                "DGL-CPU     : OOM (needs {}, budget has {})",
                human_bytes(requested),
                human_bytes(available)
            ),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}
