//! End-to-end GraphSAGE training on a larger-than-memory-style graph:
//! RingSampler feeds a prefetching DataLoader (paper §5) while the
//! aggregation substrate trains a node classifier on a synthetic
//! homophilous task.
//!
//! Run with: `cargo run --release --example train_graphsage`
//!
//! Pass `--stats-json PATH` / `--trace PATH` / `--prometheus PATH` to dump
//! the sampling-side observability report of every epoch (latency
//! histograms, phase times, per-worker spans), and `--trace-events PATH`
//! (or `RS_TRACE_EVENTS=PATH`) for the raw flight-recorder dump that the
//! `ringtrace` analyzer turns into a per-stage latency breakdown. Pass
//! `--serve <addr>` (or set `RS_SERVE=<addr>`) to watch the run live:
//! `curl <addr>/progress`.

use ringsampler::{RingSampler, SamplerConfig, TelemetryConfig};
use ringsampler_bench::StatsSink;
use ringsampler_gnn::features::SyntheticFeatures;
use ringsampler_gnn::model::SageModel;
use ringsampler_gnn::train::{evaluate, train_epoch};
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = 8u32;
    let n: u32 = 20_000;

    // Homophilous synthetic graph: each node links to ~8 same-class nodes
    // and 2 random ones, so neighborhood aggregation is informative.
    let dir = std::env::temp_dir().join("ringsampler-train");
    std::fs::create_dir_all(&dir)?;
    let base = dir.join("homophily");
    let mut state = 0x0123_4567_89AB_CDEF_u64;
    let mut rand = move |m: u32| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m as u64) as u32
    };
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for v in 0..n {
        for _ in 0..8 {
            let u = v % classes + classes * rand(n / classes);
            edges.push((v, u % n));
        }
        for _ in 0..2 {
            edges.push((v, rand(n)));
        }
    }
    let graph = build_dataset(n as u64, edges.into_iter(), &base, &PreprocessOptions::default())?;
    println!("graph: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    // `--serve <addr>` / `RS_SERVE` turn on ringscope live telemetry for
    // the DataLoader's prefetch worker (args win over the environment).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let serve = args
        .windows(2)
        .find(|w| w[0] == "--serve")
        .map(|w| w[1].clone())
        .or_else(|| std::env::var("RS_SERVE").ok().filter(|s| !s.is_empty()));

    let sampler = RingSampler::new(
        graph,
        SamplerConfig::new()
            .fanouts(&[10, 5])
            .batch_size(512)
            .telemetry_opt(serve.map(TelemetryConfig::new))
            .seed(3),
    )?;

    let feats = SyntheticFeatures::new(16, classes as usize, 0.5, 11);
    let mut model = SageModel::new(16, &[32], classes as usize, 2, 21);

    // 90/10 train/validation split.
    let split = (n as usize * 9) / 10;
    let train: Vec<NodeId> = (0..split as NodeId).collect();
    let valid: Vec<NodeId> = (split as NodeId..n).collect();

    let mut sink = StatsSink::from_args();
    println!("training 5 epochs ({} train / {} valid nodes)", train.len(), valid.len());
    for epoch in 0..5 {
        let t = train_epoch(&sampler, &mut model, &feats, |v| feats.label(v), &train, 0.3)?;
        let v = evaluate(&sampler, &model, &feats, |v| feats.label(v), &valid)?;
        println!(
            "epoch {epoch}: train[{t}]  valid[loss {:.4}, acc {:.1}%]",
            v.loss,
            v.accuracy * 100.0
        );
        // The prefetch worker's own epoch report: I/O counters, latency
        // quantiles, phase breakdown.
        if let Some(report) = &t.sampling {
            println!("  sampling: {report}");
            sink.note(&format!("train/epoch{epoch}"), report);
        }
        if let Some(report) = &v.sampling {
            sink.note(&format!("valid/epoch{epoch}"), report);
        }
    }
    sink.finish()?;
    let final_stats = evaluate(&sampler, &model, &feats, |v| feats.label(v), &valid)?;
    println!(
        "final validation accuracy: {:.1}% (chance = {:.1}%)",
        final_stats.accuracy * 100.0,
        100.0 / classes as f32
    );
    Ok(())
}
