//! Quickstart: build a graph on disk, sample an epoch with RingSampler,
//! and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use ringsampler::{epoch_targets, PipelineMode, RingSampler, SamplerConfig};
use ringsampler_graph::gen::GeneratorSpec;
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::stats::{human_bytes, GraphStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a heavy-tailed R-MAT graph (the Graph500 generator the
    //    paper's Synthetic dataset uses) and store it in the paper's
    //    hybrid layout: on-disk edge file + in-memory offset index.
    let dir = std::env::temp_dir().join("ringsampler-quickstart");
    std::fs::create_dir_all(&dir)?;
    let base = dir.join("rmat-demo");
    let spec = GeneratorSpec::Rmat {
        scale: 16,          // 65,536 nodes
        edges: 1 << 20,     // ~1M edges
    };
    println!("generating {} nodes / {} edges ...", spec.num_nodes(), spec.num_edges());
    let graph = build_dataset(
        spec.num_nodes(),
        spec.stream(42),
        &base,
        &PreprocessOptions::default(),
    )?;
    let stats = GraphStats::from_graph(&graph);
    println!(
        "stored: {stats}\n  edge file: {} on disk, offset index: {} in memory",
        human_bytes(stats.binary_bytes),
        human_bytes(graph.metadata_bytes()),
    );

    // 2. Configure RingSampler with the paper's defaults scaled down:
    //    3-layer GraphSAGE, fanout [20, 15, 10], batch 1024.
    let sampler = RingSampler::new(
        graph,
        SamplerConfig::new()
            .fanouts(&[20, 15, 10])
            .batch_size(1024)
            .ring_entries(512)
            .pipeline(PipelineMode::Async),
    )?;
    println!(
        "sampling with {} threads, ring size {}, engine auto-detected",
        sampler.config().num_threads,
        sampler.config().ring_entries
    );

    // 3. Sample one training epoch over a shuffled target permutation.
    let targets = epoch_targets(sampler.graph().num_nodes(), 0, 7);
    let report = sampler.sample_epoch(&targets)?;
    println!("epoch done: {report}");
    println!(
        "  -> {:.1}M sampled edges/s, {:.0} reads per syscall (io_uring batching)",
        report.edges_per_second() / 1e6,
        report.metrics.requests_per_syscall(),
    );

    // 4. Peek at one concrete sample, Fig. 1 style.
    let mut worker = sampler.worker()?;
    let sample = worker.sample_batch(&[1], 0)?;
    for (l, layer) in sample.layers.iter().enumerate() {
        println!(
            "  layer {l} (fanout {}): {} targets -> {} sampled neighbors",
            layer.fanout,
            layer.targets.len(),
            layer.num_edges()
        );
    }
    Ok(())
}
