//! Integration-test host package; all tests live in `tests/tests/`.
