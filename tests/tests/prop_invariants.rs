//! Property-based integration tests: core invariants hold on arbitrary
//! graphs and configurations (proptest-generated).

use proptest::prelude::*;

use ringsampler::{RingSampler, SamplerConfig};
use ringsampler_graph::edgefile::write_csr;
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::{CsrGraph, NodeId};

static CASE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn unique_base(tag: &str) -> std::path::PathBuf {
    let id = CASE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("rs-it-prop-{tag}-{}-{id}", std::process::id()))
}

/// Arbitrary small graphs: node count 1..=64, up to 400 edges.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (1usize..=64).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        proptest::collection::vec(edge, 0..400).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Edge file + offset index round-trip is the identity on CSR graphs.
    #[test]
    fn edge_file_roundtrip((n, edges) in arb_graph()) {
        let csr = CsrGraph::from_edges(n, edges).unwrap();
        let base = unique_base("roundtrip");
        let disk = write_csr(&csr, &base).unwrap();
        let back = disk.load_csr().unwrap();
        prop_assert_eq!(&back, &csr);
        std::fs::remove_file(base.with_extension("rsef")).ok();
        std::fs::remove_file(base.with_extension("rsix")).ok();
    }

    /// External-sort preprocessing equals in-memory preprocessing for any
    /// input order and chunk size.
    #[test]
    fn preprocess_chunking_invariant(
        (n, edges) in arb_graph(),
        chunk in 1usize..64,
    ) {
        let base_a = unique_base("ppa");
        let base_b = unique_base("ppb");
        let a = build_dataset(
            n as u64,
            edges.iter().copied(),
            &base_a,
            &PreprocessOptions::default(),
        ).unwrap();
        let b = build_dataset(
            n as u64,
            edges.iter().copied(),
            &base_b,
            &PreprocessOptions { chunk_edges: chunk, ..Default::default() },
        ).unwrap();
        prop_assert_eq!(a.load_csr().unwrap(), b.load_csr().unwrap());
        for base in [base_a, base_b] {
            std::fs::remove_file(base.with_extension("rsef")).ok();
            std::fs::remove_file(base.with_extension("rsix")).ok();
        }
    }

    /// RingSampler invariants on arbitrary graphs:
    /// sampled neighbors are true neighbors, per-target counts equal
    /// min(fanout, degree), layer targets are sorted-unique, and sampling
    /// is deterministic in the seed.
    #[test]
    fn sampler_invariants(
        (n, edges) in arb_graph(),
        fanout1 in 1usize..6,
        fanout2 in 1usize..4,
        seed in 0u64..1000,
    ) {
        let csr = CsrGraph::from_edges(n, edges).unwrap();
        let base = unique_base("sample");
        let disk = write_csr(&csr, &base).unwrap();
        let cfg = SamplerConfig::new()
            .fanouts(&[fanout1, fanout2])
            .batch_size(16)
            .threads(1)
            .ring_entries(8)
            .seed(seed);
        let sampler = RingSampler::new(disk.clone(), cfg).unwrap();
        let mut w1 = sampler.worker().unwrap();
        let mut w2 = sampler.worker().unwrap();
        let seeds: Vec<NodeId> = (0..n as NodeId).collect();

        let s1 = w1.sample_batch(&seeds, 3).unwrap();
        let s2 = w2.sample_batch(&seeds, 3).unwrap();
        prop_assert_eq!(&s1, &s2, "determinism");

        for (li, layer) in s1.layers.iter().enumerate() {
            // Valid neighbors.
            for (src, dst) in layer.iter_edges() {
                prop_assert!(
                    csr.neighbors(src).contains(&dst),
                    "layer {}: {} is not a neighbor of {}", li, dst, src
                );
            }
            // Exact per-target counts.
            for (pos, &t) in layer.targets.iter().enumerate() {
                let got = layer.src_pos.iter().filter(|&&p| p as usize == pos).count();
                let expect = (csr.degree(t) as usize).min(layer.fanout);
                prop_assert_eq!(got, expect, "layer {} target {}", li, t);
            }
            // Next-layer targets sorted & unique.
            if li + 1 < s1.layers.len() {
                let next = &s1.layers[li + 1].targets;
                prop_assert!(next.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            }
        }
        std::fs::remove_file(base.with_extension("rsef")).ok();
        std::fs::remove_file(base.with_extension("rsix")).ok();
    }

    /// Memory accounting: after dropping the sampler, the budget returns
    /// to zero regardless of configuration.
    #[test]
    fn budget_returns_to_zero(
        (n, edges) in arb_graph(),
        threads in 1usize..4,
    ) {
        let csr = CsrGraph::from_edges(n, edges).unwrap();
        let base = unique_base("budget");
        let disk = write_csr(&csr, &base).unwrap();
        let budget = ringsampler::MemoryBudget::limited(1 << 30);
        {
            let sampler = RingSampler::new(
                disk,
                SamplerConfig::new()
                    .fanouts(&[2])
                    .batch_size(8)
                    .threads(threads)
                    .ring_entries(8)
                    .budget(budget.clone()),
            ).unwrap();
            let seeds: Vec<NodeId> = (0..n as NodeId).collect();
            sampler.sample_epoch(&seeds).unwrap();
        }
        prop_assert_eq!(budget.used(), 0, "all charges released");
        std::fs::remove_file(base.with_extension("rsef")).ok();
        std::fs::remove_file(base.with_extension("rsix")).ok();
    }
}
