//! Cross-system integration: every sampling system completes the same
//! epoch on the same stored graph, produces consistent work counts, and
//! respects the shared memory budget.

use ringsampler::{epoch_targets, MemoryBudget, RingSampler, SamplerConfig, SamplerError};
use ringsampler_baselines::{
    DeviceModel, GinexLikeSampler, GpuFlavor, GpuMode, GpuSimSampler, InMemorySampler,
    MariusLikeSampler, NeighborSampler, RingSamplerSystem, SmartSsdModel, SmartSsdSampler,
};
use ringsampler_graph::gen::GeneratorSpec;
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::{NodeId, OnDiskGraph};

fn graph(tag: &str) -> OnDiskGraph {
    let base = std::env::temp_dir().join(format!("rs-it-cross-{}-{tag}", std::process::id()));
    let spec = GeneratorSpec::PowerLaw {
        nodes: 2_000,
        edges: 30_000,
        exponent: 0.7,
    };
    build_dataset(
        spec.num_nodes(),
        spec.stream(99),
        &base,
        &PreprocessOptions::default(),
    )
    .unwrap()
}

const FANOUTS: [usize; 2] = [4, 3];
const BATCH: usize = 128;

fn all_systems(g: &OnDiskGraph) -> Vec<Box<dyn NeighborSampler>> {
    let budget = MemoryBudget::unlimited();
    let small_ssd = SmartSsdModel {
        host_floor_bytes: 1 << 20,
        ..Default::default()
    };
    vec![
        Box::new(RingSamplerSystem::new(
            RingSampler::new(
                g.clone(),
                SamplerConfig::new()
                    .fanouts(&FANOUTS)
                    .batch_size(BATCH)
                    .threads(2)
                    .seed(1),
            )
            .unwrap(),
        )),
        Box::new(InMemorySampler::new(g, &FANOUTS, BATCH, 2, &budget, 1).unwrap()),
        Box::new(
            GpuSimSampler::new(
                g,
                GpuMode::DeviceResident,
                GpuFlavor::Dgl,
                DeviceModel::a100(GpuFlavor::Dgl),
                &FANOUTS,
                BATCH,
                2,
                &budget,
                1,
            )
            .unwrap(),
        ),
        Box::new(
            GpuSimSampler::new(
                g,
                GpuMode::Uva,
                GpuFlavor::GSampler,
                DeviceModel::a100(GpuFlavor::GSampler),
                &FANOUTS,
                BATCH,
                2,
                &budget,
                1,
            )
            .unwrap(),
        ),
        Box::new(SmartSsdSampler::new(g, small_ssd, &FANOUTS, BATCH, &budget, 1).unwrap()),
        Box::new(MariusLikeSampler::new(g, 8, &FANOUTS, BATCH, &budget, false, 1).unwrap()),
        Box::new(GinexLikeSampler::new(g, 1 << 16, &FANOUTS, BATCH, &budget, 1).unwrap()),
    ]
}

#[test]
fn every_system_completes_the_same_epoch() {
    let g = graph("epoch");
    let targets = epoch_targets(g.num_nodes(), 0, 5);
    let expected_batches = targets.len().div_ceil(BATCH) as u64;
    for mut sys in all_systems(&g) {
        let r = sys
            .sample_epoch(&targets)
            .unwrap_or_else(|e| panic!("{} failed: {e}", sys.name()));
        assert_eq!(
            r.measured.metrics.batches,
            expected_batches,
            "{} batch count",
            sys.name()
        );
        assert!(
            r.measured.metrics.sampled_edges > 0,
            "{} sampled nothing",
            sys.name()
        );
        assert!(r.reported_seconds() > 0.0, "{} reported zero time", sys.name());
    }
}

#[test]
fn work_counts_are_comparable_across_systems() {
    // All systems sample the same fanouts over the same targets, so the
    // sampled-edge counts must agree within the noise of independent RNGs
    // (exact counts differ only through layer-2 frontier sizes).
    let g = graph("counts");
    let targets: Vec<NodeId> = (0..1_000).collect();
    let mut counts = Vec::new();
    for mut sys in all_systems(&g) {
        let r = sys.sample_epoch(&targets).unwrap();
        counts.push((sys.name(), r.measured.metrics.sampled_edges));
    }
    let min = counts.iter().map(|c| c.1).min().unwrap();
    let max = counts.iter().map(|c| c.1).max().unwrap();
    assert!(
        (max as f64) / (min as f64) < 1.2,
        "sampled-edge counts diverge: {counts:?}"
    );
}

#[test]
fn shared_budget_oom_ranking() {
    // Under a budget that comfortably holds RingSampler's metadata but not
    // an in-memory graph, RingSampler runs while DGL-CPU and UVA OOM —
    // the core Fig. 4/5 ranking.
    let g = graph("budget");
    let targets: Vec<NodeId> = (0..500).collect();
    let budget_bytes = g.metadata_bytes() + (20 << 20);
    {
        let budget = MemoryBudget::limited(budget_bytes);
        let rs = RingSampler::new(
            g.clone(),
            SamplerConfig::new()
                .fanouts(&FANOUTS)
                .batch_size(BATCH)
                .threads(1)
                .budget(budget),
        )
        .unwrap();
        rs.sample_epoch(&targets).unwrap();
    }
    {
        // In-memory graph needs 8x the compact size; make the budget tight.
        let compact = g.metadata_bytes() + g.num_edges() * 4;
        let budget = MemoryBudget::limited(compact * 4);
        match InMemorySampler::new(&g, &FANOUTS, BATCH, 1, &budget, 0) {
            Err(SamplerError::OutOfMemory { .. }) => {}
            other => panic!("DGL-CPU should OOM, got {:?}", other.map(|_| ())),
        }
        match GpuSimSampler::new(
            &g,
            GpuMode::Uva,
            GpuFlavor::Dgl,
            DeviceModel::a100(GpuFlavor::Dgl),
            &FANOUTS,
            BATCH,
            1,
            &budget,
            0,
        ) {
            Err(SamplerError::OutOfMemory { .. }) => {}
            other => panic!("UVA should OOM, got {:?}", other.map(|_| ())),
        }
    }
}
