//! End-to-end integration: generate → external-sort preprocess → sample
//! through io_uring → train GraphSAGE → verify learning, exercising every
//! crate in one flow (the paper's §5 integration story).

use ringsampler::{RingSampler, SamplerConfig};
use ringsampler_gnn::features::SyntheticFeatures;
use ringsampler_gnn::model::SageModel;
use ringsampler_gnn::train::{evaluate, train_epoch};
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::NodeId;

#[test]
fn full_pipeline_learns_a_homophilous_task() {
    let classes = 4u32;
    let n: u32 = 2_000;
    // Homophilous graph (class = v % classes), forced through the
    // external-sort path with tiny chunks.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for v in 0..n {
        for j in 1..=6u32 {
            edges.push((v, (v + classes * j * 17) % n));
        }
    }
    let base = std::env::temp_dir().join(format!("rs-it-e2e-{}", std::process::id()));
    let graph = build_dataset(
        n as u64,
        edges.into_iter(),
        &base,
        &PreprocessOptions {
            chunk_edges: 1_000, // force many external-sort runs
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(graph.num_edges(), 6 * n as u64);

    let sampler = RingSampler::new(
        graph,
        SamplerConfig::new()
            .fanouts(&[5, 3])
            .batch_size(128)
            .threads(2)
            .seed(17),
    )
    .unwrap();
    let feats = SyntheticFeatures::new(8, classes as usize, 0.4, 23);
    let mut model = SageModel::new(8, &[16], classes as usize, 2, 31);

    let train: Vec<NodeId> = (0..1_800).collect();
    let valid: Vec<NodeId> = (1_800..2_000).collect();

    let before = evaluate(&sampler, &model, &feats, |v| feats.label(v), &valid).unwrap();
    for _ in 0..3 {
        train_epoch(&sampler, &mut model, &feats, |v| feats.label(v), &train, 0.3).unwrap();
    }
    let after = evaluate(&sampler, &model, &feats, |v| feats.label(v), &valid).unwrap();

    assert!(
        after.loss < before.loss,
        "validation loss should drop: {} -> {}",
        before.loss,
        after.loss
    );
    assert!(
        after.accuracy > 0.6,
        "validation accuracy {} should decisively beat 25% chance",
        after.accuracy
    );
}

#[test]
fn engines_produce_identical_epochs() {
    use ringsampler_io::EngineKind;
    let n = 1_000u32;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for v in 0..n {
        for j in 0..(v % 7) {
            edges.push((v, (v * 13 + j) % n));
        }
    }
    let base = std::env::temp_dir().join(format!("rs-it-engines-{}", std::process::id()));
    let graph = build_dataset(n as u64, edges.into_iter(), &base, &PreprocessOptions::default())
        .unwrap();

    let run = |engine: EngineKind| {
        let sampler = RingSampler::new(
            graph.clone(),
            SamplerConfig::new()
                .fanouts(&[4, 3])
                .batch_size(64)
                .threads(2)
                .engine(engine)
                .seed(8),
        )
        .unwrap();
        let targets: Vec<NodeId> = (0..n).collect();
        let acc = std::sync::Mutex::new(std::collections::BTreeMap::new());
        sampler
            .sample_epoch_with(&targets, |i, s| {
                acc.lock().unwrap().insert(i, s);
            })
            .unwrap();
        acc.into_inner().unwrap()
    };

    let uring = run(EngineKind::Uring);
    let pread = run(EngineKind::Pread);
    assert_eq!(uring.len(), pread.len());
    assert_eq!(uring, pread, "engines must be bit-identical");
}
