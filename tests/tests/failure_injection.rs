//! Failure injection: corrupt files, truncations, budget exhaustion
//! mid-flight, and engine fallback behavior.

use ringsampler::{MemoryBudget, RingSampler, SamplerConfig, SamplerError};
use ringsampler_graph::edgefile::{write_csr, EDGE_EXT, INDEX_EXT};
use ringsampler_graph::{CsrGraph, GraphError, NodeId, OnDiskGraph};

fn make_graph(tag: &str) -> (std::path::PathBuf, OnDiskGraph) {
    let base = std::env::temp_dir().join(format!("rs-it-fail-{}-{tag}", std::process::id()));
    let mut edges = Vec::new();
    for v in 0..200u32 {
        for j in 0..(v % 6 + 1) {
            edges.push((v, (v * 11 + j) % 200));
        }
    }
    let csr = CsrGraph::from_edges(200, edges).unwrap();
    let g = write_csr(&csr, &base).unwrap();
    (base, g)
}

fn cleanup(base: &std::path::Path) {
    std::fs::remove_file(base.with_extension(EDGE_EXT)).ok();
    std::fs::remove_file(base.with_extension(INDEX_EXT)).ok();
}

#[test]
fn truncated_edge_file_fails_at_open_not_at_sample() {
    let (base, _g) = make_graph("trunc");
    let edge = base.with_extension(EDGE_EXT);
    let bytes = std::fs::read(&edge).unwrap();
    std::fs::write(&edge, &bytes[..bytes.len() / 2]).unwrap();
    // Validation catches the inconsistency before any sampling starts.
    match OnDiskGraph::open(&base) {
        Err(GraphError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    cleanup(&base);
}

#[test]
fn file_shrunk_after_open_surfaces_as_short_read() {
    let (base, g) = make_graph("shrink");
    let sampler = RingSampler::new(
        g,
        SamplerConfig::new().fanouts(&[3]).batch_size(64).threads(1),
    )
    .unwrap();
    // Sabotage: shrink the edge file while the sampler holds it open.
    let edge = base.with_extension(EDGE_EXT);
    let bytes = std::fs::read(&edge).unwrap();
    std::fs::write(&edge, &bytes[..100]).unwrap();
    let targets: Vec<NodeId> = (0..200).collect();
    match sampler.sample_epoch(&targets) {
        Err(SamplerError::Io(e)) => {
            let msg = e.to_string();
            assert!(
                msg.contains("short read") || msg.contains("failed"),
                "unexpected error: {msg}"
            );
        }
        other => panic!("expected I/O failure, got {:?}", other.map(|_| ())),
    }
    cleanup(&base);
}

#[test]
fn budget_exhaustion_mid_epoch_reports_oom_not_corruption() {
    let (base, g) = make_graph("midoom");
    let meta = g.metadata_bytes();
    // Enough for the index and the worker's base charge, but not for
    // workspace growth during deep sampling.
    let budget = MemoryBudget::limited(meta + 600 * 1024);
    let sampler = RingSampler::new(
        g,
        SamplerConfig::new()
            .fanouts(&[10, 10, 10])
            .batch_size(200)
            .threads(1)
            .ring_entries(64)
            .budget(budget.clone()),
    )
    .unwrap();
    let targets: Vec<NodeId> = (0..200).collect();
    match sampler.sample_epoch(&targets) {
        Err(SamplerError::OutOfMemory { what, .. }) => {
            assert!(!what.is_empty());
        }
        Ok(_) => {
            // If the workspace happened to fit, the budget must balance.
        }
        Err(e) => panic!("expected OOM or success, got {e}"),
    }
    // Whatever happened, all charges are released once the sampler drops.
    drop(sampler);
    assert_eq!(budget.used(), 0);
    cleanup(&base);
}

#[test]
fn empty_target_list_is_a_clean_noop() {
    let (base, g) = make_graph("empty");
    let sampler = RingSampler::new(g, SamplerConfig::new().fanouts(&[3]).threads(2)).unwrap();
    let r = sampler.sample_epoch(&[]).unwrap();
    assert_eq!(r.metrics.batches, 0);
    assert_eq!(r.metrics.sampled_edges, 0);
    cleanup(&base);
}

#[test]
fn missing_index_file_is_reported_with_path() {
    let (base, _g) = make_graph("noidx");
    std::fs::remove_file(base.with_extension(INDEX_EXT)).unwrap();
    match OnDiskGraph::open(&base) {
        Err(GraphError::Io { path, .. }) => {
            assert!(path.expect("path attached").to_string_lossy().contains("rsix"));
        }
        other => panic!("expected Io error, got {other:?}"),
    }
    cleanup(&base);
}

#[test]
fn layerwise_and_nodewise_coexist_on_one_worker() {
    let (base, g) = make_graph("mixed");
    let csr = g.load_csr().unwrap();
    let sampler = RingSampler::new(
        g,
        SamplerConfig::new().fanouts(&[4, 3]).ring_entries(32).seed(2),
    )
    .unwrap();
    let mut w = sampler.worker().unwrap();
    let seeds: Vec<NodeId> = (0..60).collect();
    let nodewise = w.sample_batch(&seeds, 0).unwrap();
    let plan = ringsampler::LayerwisePlan::new(&[16, 8]);
    let layerwise = w.sample_batch_layerwise(&seeds, &plan, 0).unwrap();
    let nodewise2 = w.sample_batch(&seeds, 0).unwrap();
    // Interleaving layer-wise sampling does not disturb node-wise streams.
    assert_eq!(nodewise, nodewise2);
    for s in [&nodewise, &layerwise] {
        for layer in &s.layers {
            for (src, dst) in layer.iter_edges() {
                assert!(csr.neighbors(src).contains(&dst));
            }
        }
    }
    cleanup(&base);
}
