//! Each test pins one measurable design claim from the paper's §3.

use ringsampler::{CachePolicy, MemoryBudget, RingSampler, SamplerConfig};
use ringsampler_graph::gen::GeneratorSpec;
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::{NodeId, OnDiskGraph};

fn graph(tag: &str, nodes: u64, edges: u64) -> OnDiskGraph {
    let base =
        std::env::temp_dir().join(format!("rs-it-claims-{}-{tag}", std::process::id()));
    let spec = GeneratorSpec::PowerLaw {
        nodes,
        edges,
        exponent: 0.7,
    };
    build_dataset(nodes, spec.stream(31), &base, &PreprocessOptions::default()).unwrap()
}

/// §3.1 "Overlapping computation and I/O": batching a whole I/O group per
/// `io_uring_enter` means hundreds of reads per syscall; the pread engine
/// needs one syscall per read.
#[test]
fn claim_io_uring_batches_hundreds_of_reads_per_syscall() {
    use ringsampler_io::EngineKind;
    let g = graph("batching", 3_000, 60_000);
    let targets: Vec<NodeId> = (0..3_000).collect();
    let run = |engine| {
        let s = RingSampler::new(
            g.clone(),
            SamplerConfig::new()
                .fanouts(&[10, 10])
                .batch_size(512)
                .threads(1)
                .ring_entries(512)
                .engine(engine)
                .seed(3),
        )
        .unwrap();
        s.sample_epoch(&targets).unwrap().metrics
    };
    let uring = run(EngineKind::Uring);
    let pread = run(EngineKind::Pread);
    assert!(
        uring.requests_per_syscall() > 100.0,
        "io_uring should batch >100 reads/syscall, got {:.1}",
        uring.requests_per_syscall()
    );
    assert!(
        pread.requests_per_syscall() <= 1.01,
        "pread is one syscall per read, got {:.1}",
        pread.requests_per_syscall()
    );
    assert!(uring.syscalls * 50 < pread.syscalls);
}

/// §3.1 offset-based sampling: disk traffic is exactly 4 bytes per sampled
/// neighbor — full lists are never fetched.
#[test]
fn claim_reads_exactly_four_bytes_per_sampled_edge() {
    let g = graph("exact", 2_000, 100_000); // avg degree 50 ≫ fanout
    let s = RingSampler::new(
        g,
        SamplerConfig::new().fanouts(&[5, 5]).batch_size(256).threads(1),
    )
    .unwrap();
    let targets: Vec<NodeId> = (0..2_000).collect();
    let m = s.sample_epoch(&targets).unwrap().metrics;
    assert_eq!(m.io_bytes, m.sampled_edges * 4, "exactly 4 B per edge");
    assert_eq!(m.io_requests, m.sampled_edges, "one read per edge");
}

/// §4.3: auxiliary memory depends on |V| and configuration only — two
/// graphs with the same node count but 5× different edge counts need the
/// same budget.
#[test]
fn claim_memory_independent_of_edge_count() {
    // Workspace size is bounded by batch × fanout products, never by |E|:
    // with every degree ≥ fanout, two graphs 5× apart in |E| need the
    // same memory (the paper's §4.3 argument for Fig. 5's flat curve).
    let sparse = graph("mem-sparse", 5_000, 50_000); // avg degree 10
    let dense = graph("mem-dense", 5_000, 250_000); // avg degree 50
    let need = |g: &OnDiskGraph| -> u64 {
        let budget = MemoryBudget::unlimited();
        let s = RingSampler::new(
            g.clone(),
            SamplerConfig::new()
                .fanouts(&[4, 4])
                .batch_size(256)
                .threads(1)
                .budget(budget.clone())
                .seed(1),
        )
        .unwrap();
        let targets: Vec<NodeId> = (0..5_000).collect();
        s.sample_epoch(&targets).unwrap();
        budget.high_water()
    };
    let a = need(&sparse);
    let b = need(&dense);
    let ratio = b as f64 / a as f64;
    assert!(
        (0.7..1.3).contains(&ratio),
        "5x edges should not change memory need: {a} vs {b}"
    );
}

/// §2.1 inter-layer dedup: next-layer targets are strictly smaller-or-
/// equal than raw samples and contain no duplicates.
#[test]
fn claim_dedup_between_layers() {
    let g = graph("dedup", 500, 25_000);
    let s = RingSampler::new(
        g,
        SamplerConfig::new().fanouts(&[20, 10]).batch_size(128).seed(9),
    )
    .unwrap();
    let mut w = s.worker().unwrap();
    let seeds: Vec<NodeId> = (0..128).collect();
    let b = w.sample_batch(&seeds, 0).unwrap();
    let raw = b.layers[0].num_edges();
    let unique = b.layers[1].targets.len();
    assert!(unique <= raw);
    let mut sorted = b.layers[1].targets.clone();
    sorted.dedup();
    assert_eq!(sorted.len(), unique, "targets must be unique");
}

/// §4.4 note: "a smart caching strategy would be needed to further
/// improve responsiveness" — the optional page cache composes with the
/// on-demand mode, stays correct, and actually hits.
#[test]
fn claim_on_demand_composes_with_page_cache() {
    let g = graph("odcache", 1_000, 50_000);
    let cached = RingSampler::new(
        g.clone(),
        SamplerConfig::new()
            .fanouts(&[5, 3])
            .batch_size(1)
            .threads(1)
            .cache(CachePolicy::Page {
                budget_bytes: 4 << 20,
            })
            .seed(4),
    )
    .unwrap();
    let targets: Vec<NodeId> = (0..500).collect();
    let report = ringsampler::run_on_demand(&cached, &targets).unwrap();
    assert_eq!(report.requests, 500);
    // With 4 MiB of cache over a ~200 KiB edge file, repeat requests for
    // hub pages must hit.
    let m = {
        let mut worker = cached.worker().unwrap();
        for (i, &t) in targets.iter().enumerate() {
            worker.sample_batch(&[t], i as u64).unwrap();
        }
        worker.metrics()
    };
    assert!(
        m.cache_hits > m.cache_misses,
        "cache should mostly hit: {} hits / {} misses",
        m.cache_hits,
        m.cache_misses
    );
}

/// §3.1 "memory usage scales with the number of threads": high-water mark
/// grows roughly linearly as threads are added.
#[test]
fn claim_memory_scales_with_threads() {
    let g = graph("threadmem", 4_000, 40_000);
    let need = |threads: usize| -> u64 {
        let budget = MemoryBudget::unlimited();
        let s = RingSampler::new(
            g.clone(),
            SamplerConfig::new()
                .fanouts(&[10, 10])
                .batch_size(256)
                .threads(threads)
                .budget(budget.clone())
                .seed(6),
        )
        .unwrap();
        let targets: Vec<NodeId> = (0..4_000).collect();
        s.sample_epoch(&targets).unwrap();
        budget.high_water()
    };
    let one = need(1);
    let four = need(4);
    assert!(
        four as f64 > one as f64 * 1.8,
        "4 threads should need noticeably more memory: {one} vs {four}"
    );
}
