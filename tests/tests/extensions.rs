//! Integration tests for the extension features: layer-wise sampling
//! feeding the GNN substrate, optimizers, and checkpoint round-trips
//! through a real training flow.

use ringsampler::{LayerwisePlan, RingSampler, SamplerConfig};
use ringsampler_gnn::features::SyntheticFeatures;
use ringsampler_gnn::model::SageModel;
use ringsampler_gnn::optim::{Adam, Optimizer, Sgd};
use ringsampler_gnn::tensor::softmax_cross_entropy;
use ringsampler_gnn::{evaluate, load_model, save_model};
use ringsampler_graph::gen::GeneratorSpec;
use ringsampler_graph::preprocess::{build_dataset, PreprocessOptions};
use ringsampler_graph::NodeId;

fn sampler(tag: &str, fanouts: &[usize]) -> RingSampler {
    let base = std::env::temp_dir().join(format!("rs-it-ext-{}-{tag}", std::process::id()));
    let spec = GeneratorSpec::PowerLaw {
        nodes: 1_000,
        edges: 15_000,
        exponent: 0.7,
    };
    let g = build_dataset(1_000, spec.stream(3), &base, &PreprocessOptions::default()).unwrap();
    RingSampler::new(
        g,
        SamplerConfig::new()
            .fanouts(fanouts)
            .batch_size(128)
            .threads(1)
            .ring_entries(64)
            .seed(21),
    )
    .unwrap()
}

#[test]
fn layerwise_batches_feed_the_gnn() {
    let s = sampler("lwgnn", &[6, 4]);
    let mut w = s.worker().unwrap();
    let plan = LayerwisePlan::new(&[64, 32]);
    let feats = SyntheticFeatures::new(8, 4, 0.3, 5);
    let mut model = SageModel::new(8, &[12], 4, 2, 9);

    let seeds: Vec<NodeId> = (0..128).collect();
    let mut losses = Vec::new();
    for step in 0..10 {
        let batch = w.sample_batch_layerwise(&seeds, &plan, step).unwrap();
        let labels: Vec<usize> = batch.seeds().iter().map(|&v| feats.label(v)).collect();
        let (logits, cache) = model.forward(&batch, &feats);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        let (loss, dl) = softmax_cross_entropy(&logits, &labels);
        let grads = model.backward(&cache, &dl);
        model.sgd_step(&grads, 0.3);
        losses.push(loss);
    }
    assert!(
        losses.last().unwrap() < &losses[0],
        "layer-wise training should reduce loss: {losses:?}"
    );
}

#[test]
fn layerwise_bounds_io_versus_nodewise() {
    // The point of layer-wise sampling: bounded layer width ⇒ bounded
    // reads for deep models.
    let s = sampler("lwio", &[10, 10, 10]);
    let seeds: Vec<NodeId> = (0..128).collect();

    let mut w1 = s.worker().unwrap();
    w1.sample_batch(&seeds, 0).unwrap();
    let nodewise_reads = w1.metrics().io_requests;

    let mut w2 = s.worker().unwrap();
    let plan = LayerwisePlan::new(&[64, 64, 64]);
    w2.sample_batch_layerwise(&seeds, &plan, 0).unwrap();
    let layerwise_reads = w2.metrics().io_requests;

    assert!(
        layerwise_reads * 2 < nodewise_reads,
        "layer-wise should read far less at depth 3: {layerwise_reads} vs {nodewise_reads}"
    );
}

#[test]
fn checkpoint_roundtrip_through_training() {
    let s = sampler("ckpt", &[5, 3]);
    let feats = SyntheticFeatures::new(8, 4, 0.3, 7);
    let mut model = SageModel::new(8, &[10], 4, 2, 3);
    let targets: Vec<NodeId> = (0..500).collect();

    // Train a little, checkpoint, evaluate.
    ringsampler_gnn::train_epoch(&s, &mut model, &feats, |v| feats.label(v), &targets, 0.2)
        .unwrap();
    let path = std::env::temp_dir().join(format!("rs-it-ckpt-{}", std::process::id()));
    save_model(&model, &path).unwrap();
    let before = evaluate(&s, &model, &feats, |v| feats.label(v), &targets).unwrap();

    // Restore into a freshly initialized model: identical evaluation.
    let mut restored = SageModel::new(8, &[10], 4, 2, 12345);
    load_model(&mut restored, &path).unwrap();
    let after = evaluate(&s, &restored, &feats, |v| feats.label(v), &targets).unwrap();
    assert!((before.loss - after.loss).abs() < 1e-6);
    assert!((before.accuracy - after.accuracy).abs() < 1e-6);
    std::fs::remove_file(path).ok();
}

#[test]
fn optimizers_drive_real_training() {
    let s = sampler("optim", &[5, 3]);
    let feats = SyntheticFeatures::new(8, 4, 0.3, 11);
    let targets: Vec<NodeId> = (0..400).collect();

    let run = |opt: &mut dyn Optimizer| -> f32 {
        let mut model = SageModel::new(8, &[10], 4, 2, 6);
        let mut w = s.worker().unwrap();
        let mut last = 0.0;
        for step in 0..12 {
            let batch = w
                .sample_batch(&targets[..128], step)
                .unwrap();
            let labels: Vec<usize> =
                batch.seeds().iter().map(|&v| feats.label(v)).collect();
            let (logits, cache) = model.forward(&batch, &feats);
            let (loss, dl) = softmax_cross_entropy(&logits, &labels);
            let grads = model.backward(&cache, &dl);
            opt.step(&mut model, &grads);
            last = loss;
        }
        last
    };
    let chance = (4.0f32).ln(); // -ln(1/4)
    assert!(run(&mut Sgd::new(0.3)) < chance);
    assert!(run(&mut Sgd::with_momentum(0.1, 0.9)) < chance);
    assert!(run(&mut Adam::new(0.05)) < chance);
}

#[test]
fn validator_passes_generated_datasets() {
    let s = sampler("fsck", &[3]);
    let report = ringsampler_graph::validate_graph(s.graph()).unwrap();
    assert!(report.is_ok(), "{report}");
    assert_eq!(report.entries_scanned, s.graph().num_edges());
}
