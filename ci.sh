#!/usr/bin/env bash
# CI gate for the RingSampler workspace. Runs the full verification
# pipeline and stops at the first failure:
#
#   1. release build of every crate
#   2. the complete test suite (unit + integration + property tests)
#   3. clippy with warnings denied
#   4. ringlint — the workspace invariant checker (see DESIGN.md §7)
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ringlint (workspace, incl. crates/ringstat hot-path recorders)"
cargo run -q -p ringlint

echo "CI: all gates passed."
