#!/usr/bin/env bash
# CI gate for the RingSampler workspace. Runs the full verification
# pipeline and stops at the first failure:
#
#   1. release build of every crate
#   2. the complete test suite (unit + integration + property tests)
#   3. clippy with warnings denied
#   4. ringlint — the workspace invariant checker (see DESIGN.md §7),
#      whose hot-path scope covers the read planner (crates/core/src/plan.rs)
#   5. plan_compare smoke — the read-plan ablation on a tiny graph, with
#      RS_PLAN_ASSERT enforcing the >= 20% SQE-reduction floor and
#      byte-identical samples across all plan modes
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ringlint (workspace, incl. crates/ringstat hot-path recorders)"
cargo run -q -p ringlint

echo "==> plan_compare smoke (tiny graph, RS_PLAN_ASSERT)"
RS_PLAN_NODES=2000 RS_PLAN_EDGES=20000 RS_TARGETS=500 RS_THREADS=2 \
RS_PLAN_ASSERT=1 RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/plan_compare

echo "CI: all gates passed."
