#!/usr/bin/env bash
# CI gate for the RingSampler workspace. Runs the full verification
# pipeline and stops at the first failure:
#
#   1. release build of every crate
#   2. the complete test suite (unit + integration + property tests)
#   3. clippy with warnings denied
#   4. ringlint — the workspace invariant checker (see DESIGN.md §7),
#      whose hot-path scope covers the read planner (crates/core/src/plan.rs)
#   5. ringlint baseline gate — the JSON report diffed against the
#      committed ringlint-baseline.json (see DESIGN.md §11): new
#      violations or stale `ringlint: allow` comments fail CI even if
#      someone grows the baseline by hand
#   6. plan_compare smoke — the read-plan ablation on a tiny graph, with
#      RS_PLAN_ASSERT enforcing the >= 20% SQE-reduction floor and
#      byte-identical samples across all plan modes
#   7. ringscope smoke — fig4_overall with --serve 127.0.0.1:0, asserting
#      that /metrics serves HTTP 200 with the ringsampler_ metric families
#      and /healthz reports ok while the run is live
#   8. ringtrace smoke — a small fig4_overall with --trace-events, whose
#      flight-recorder dump is fed through the ringtrace analyzer with
#      --assert-coverage 0.90: per-stage attribution (sample/plan/submit/
#      wait/reap/scatter) must sum to within 10% of the end-to-end batch
#      latency (see DESIGN.md §12)
#   9. ring_modes gate — the zero-syscall ring-mode ladder A/B (see
#      DESIGN.md §13), with RS_RING_ASSERT enforcing byte-identical
#      samples across every rung and a >= 50% enter-syscall-per-I/O-group
#      reduction for defer_taskrun vs off (self-skips with a notice when
#      the kernel refuses DEFER_TASKRUN — there is nothing to measure
#      then); refreshes the committed BENCH_ring_modes.json baseline
#  10. ringtop gate — a small fig4_overall with --serve, asserting that
#      /history serves the per-worker time series, /congestion serves
#      verdicts, and `ringtop --once` renders a frame with every worker
#      present and judged ok once the fleet idles (see DESIGN.md §14)
#  11. ringprof gate — prof_compare with RS_PROF_ASSERT (read
#      amplification >= 1.0 uncached, strictly lower cached, and
#      byte-identical samples with profiling on vs off), then a small
#      fig4_overall with profiling on asserting every worker's time
#      ledger conserves (accounts for >= 90% of wall), /resources
#      serves the attribution, and `ringtop --once` renders the CPU
#      column and the ledger bar (see DESIGN.md §15)
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ringlint (workspace, incl. crates/ringstat hot-path recorders)"
cargo run -q -p ringlint

echo "==> ringlint baseline gate (--json --baseline ringlint-baseline.json)"
cargo run -q -p ringlint -- --json --baseline ringlint-baseline.json >/dev/null

echo "==> plan_compare smoke (tiny graph, RS_PLAN_ASSERT)"
RS_PLAN_NODES=2000 RS_PLAN_EDGES=20000 RS_TARGETS=500 RS_THREADS=2 \
RS_PLAN_ASSERT=1 RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/plan_compare

echo "==> ringscope smoke (fig4_overall --serve, live /metrics + /healthz)"
SCOPE_LOG="$(mktemp)"
RS_SCALE=100000 RS_TARGETS=200 RS_EPOCHS=1 RS_THREADS=2 \
RS_SERVE_LINGER=20 RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/fig4_overall --serve 127.0.0.1:0 >/dev/null 2>"$SCOPE_LOG" &
SCOPE_PID=$!
# The server announces its bound address (port 0 picks a free port).
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^ringscope listening on http://##p' "$SCOPE_LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SCOPE_PID" 2>/dev/null || { cat "$SCOPE_LOG"; echo "fig4_overall exited before serving"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] && echo "    ringscope bound at $ADDR" || { cat "$SCOPE_LOG"; echo "no listening announcement"; exit 1; }
METRICS="$(curl -fsS "http://$ADDR/metrics")" || { echo "/metrics not serving"; kill "$SCOPE_PID"; exit 1; }
echo "$METRICS" | grep -q "^ringsampler_up 1$" || { echo "/metrics missing ringsampler_up"; kill "$SCOPE_PID"; exit 1; }
echo "$METRICS" | grep -q "^# TYPE ringsampler_workers gauge$" || { echo "/metrics missing ringsampler_workers family"; kill "$SCOPE_PID"; exit 1; }
HEALTH_CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/healthz")"
[ "$HEALTH_CODE" = "200" ] || { echo "/healthz returned $HEALTH_CODE"; kill "$SCOPE_PID"; exit 1; }
curl -fsS "http://$ADDR/progress" | grep -q '"fleet"' || { echo "/progress missing fleet object"; kill "$SCOPE_PID"; exit 1; }
kill "$SCOPE_PID" 2>/dev/null || true
wait "$SCOPE_PID" 2>/dev/null || true
echo "    ringscope smoke ok (/metrics, /healthz, /progress)"

echo "==> ringtrace smoke (fig4_overall --trace-events, stage coverage >= 90%)"
TRACE_DUMP="$(mktemp -d)/fig4-events.json"
RS_SCALE=100000 RS_TARGETS=200 RS_EPOCHS=1 RS_THREADS=2 \
RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/fig4_overall --trace-events "$TRACE_DUMP" >/dev/null
./target/release/ringtrace "$TRACE_DUMP" --assert-coverage 0.90 >/dev/null
echo "    ringtrace smoke ok (stage attribution covers >= 90% of batch time)"

echo "==> ring_modes gate (ring-mode ladder A/B, RS_RING_ASSERT)"
RS_RING_ASSERT=1 RS_TARGETS=4096 RS_THREADS=4 RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/ring_modes --bench-json BENCH_ring_modes.json

echo "==> ringtop gate (fig4_overall --serve, /history + /congestion + ringtop --once)"
TOP_LOG="$(mktemp)"
# 8192 targets = 8 batches of 1024: both workers own batches, so both
# appear in /history and must converge to an ok verdict.
RS_SCALE=100000 RS_TARGETS=8192 RS_EPOCHS=1 RS_THREADS=2 \
RS_SERVE_LINGER=20 RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/fig4_overall --serve 127.0.0.1:0 >/dev/null 2>"$TOP_LOG" &
TOP_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^ringscope listening on http://##p' "$TOP_LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$TOP_PID" 2>/dev/null || { cat "$TOP_LOG"; echo "fig4_overall exited before serving"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] && echo "    ringscope bound at $ADDR" || { cat "$TOP_LOG"; echo "no listening announcement"; exit 1; }
curl -fsS "http://$ADDR/history?window=32" | grep -q '"workers"' || { echo "/history missing workers array"; kill "$TOP_PID"; exit 1; }
curl -fsS "http://$ADDR/congestion" | grep -q '"fleet"' || { echo "/congestion missing fleet rollup"; kill "$TOP_PID"; exit 1; }
# Once the run winds down the fleet idles, and an idle fleet must judge
# all-ok: poll ringtop --once until the frame shows both workers ok.
FRAME=""
for _ in $(seq 1 100); do
    FRAME="$(./target/release/ringtop --once "$ADDR" 2>/dev/null || true)"
    if echo "$FRAME" | grep -q '^worker 0 \[ok\]' && echo "$FRAME" | grep -q '^worker 1 \[ok\]'; then
        break
    fi
    FRAME=""
    sleep 0.2
done
[ -n "$FRAME" ] || { echo "ringtop --once never rendered an all-ok two-worker frame"; ./target/release/ringtop --once "$ADDR" || true; kill "$TOP_PID"; exit 1; }
echo "$FRAME" | grep -q '^fleet:' || { echo "ringtop frame missing fleet roll-up"; kill "$TOP_PID"; exit 1; }
# Capture rather than pipe: under pipefail an early-exiting grep -q
# would otherwise turn the (large) JSON dump into a SIGPIPE failure.
TOP_JSON="$(./target/release/ringtop --once --json "$ADDR")"
echo "$TOP_JSON" | grep -q '"history"' || { echo "ringtop --json missing history document"; kill "$TOP_PID"; exit 1; }
echo "$TOP_JSON" | grep -q '"resources"' || { echo "ringtop --json missing resources document"; kill "$TOP_PID"; exit 1; }
kill "$TOP_PID" 2>/dev/null || true
wait "$TOP_PID" 2>/dev/null || true
echo "    ringtop gate ok (/history, /congestion, ringtop --once all-ok frame)"

echo "==> ringprof gate (prof_compare RS_PROF_ASSERT + fig4_overall /resources ledger)"
RS_PROF_NODES=2000 RS_PROF_EDGES=20000 RS_THREADS=2 \
RS_PROF_ASSERT=1 RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/prof_compare --bench-json BENCH_prof.json
PROF_LOG="$(mktemp)"
RS_SCALE=100000 RS_TARGETS=8192 RS_EPOCHS=1 RS_THREADS=2 \
RS_SERVE_LINGER=20 RS_DATA_DIR="$(mktemp -d)" \
    ./target/release/fig4_overall --serve 127.0.0.1:0 >/dev/null 2>"$PROF_LOG" &
PROF_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^ringscope listening on http://##p' "$PROF_LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$PROF_PID" 2>/dev/null || { cat "$PROF_LOG"; echo "fig4_overall exited before serving"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] && echo "    ringscope bound at $ADDR" || { cat "$PROF_LOG"; echo "no listening announcement"; exit 1; }
# Poll until an epoch has published its attribution and every worker's
# ledger conserves (>= 90% of wall accounted; the JSON carries the
# per-worker verdict as "conserved").
RES=""
for _ in $(seq 1 100); do
    RES="$(curl -fsS "http://$ADDR/resources" 2>/dev/null || true)"
    if echo "$RES" | grep -q '"workers"' && echo "$RES" | grep -q '"conserved": true' \
        && ! echo "$RES" | grep -q '"conserved": false'; then
        break
    fi
    RES=""
    sleep 0.2
done
[ -n "$RES" ] || { echo "/resources never served a fully-conserving ledger"; curl -fsS "http://$ADDR/resources" || true; kill "$PROF_PID"; exit 1; }
echo "$RES" | grep -q '"read_amplification"' || { echo "/resources missing read_amplification"; kill "$PROF_PID"; exit 1; }
# The dashboard must render the ringprof columns from the live feed.
PROF_FRAME="$(./target/release/ringtop --once "$ADDR")"
echo "$PROF_FRAME" | grep -q '^  cpu        |' || { echo "ringtop frame missing CPU column"; echo "$PROF_FRAME"; kill "$PROF_PID"; exit 1; }
echo "$PROF_FRAME" | grep -q '^  ledger     |' || { echo "ringtop frame missing ledger bar"; echo "$PROF_FRAME"; kill "$PROF_PID"; exit 1; }
kill "$PROF_PID" 2>/dev/null || true
wait "$PROF_PID" 2>/dev/null || true
echo "    ringprof gate ok (amplification A/B, conserving ledgers, /resources, ringtop CPU column)"

echo "CI: all gates passed."
